#include "dmm/alloc/config_rules.h"

namespace dmm::alloc {

bool pool_blocks_fixed(const DmmConfig& cfg) {
  if (cfg.pool_division == PoolDivision::kPoolPerExactSize) return true;
  if (cfg.pool_division == PoolDivision::kPoolPerSizeClass &&
      cfg.block_sizes == BlockSizes::kFixedClasses) {
    return true;
  }
  return false;
}

namespace {

bool wants_split(const DmmConfig& c) {
  return c.flexible == FlexibleBlockSize::kSplitOnly ||
         c.flexible == FlexibleBlockSize::kSplitAndCoalesce;
}

bool wants_coalesce(const DmmConfig& c) {
  return c.flexible == FlexibleBlockSize::kCoalesceOnly ||
         c.flexible == FlexibleBlockSize::kSplitAndCoalesce;
}

bool records_size(const DmmConfig& c) {
  const bool header = c.block_tags == BlockTags::kHeader ||
                      c.block_tags == BlockTags::kHeaderFooter;
  return header && (c.recorded_info == RecordedInfo::kSize ||
                    c.recorded_info == RecordedInfo::kSizeAndStatus);
}

bool records_status(const DmmConfig& c) {
  const bool header = c.block_tags == BlockTags::kHeader ||
                      c.block_tags == BlockTags::kHeaderFooter;
  return header && (c.recorded_info == RecordedInfo::kStatus ||
                    c.recorded_info == RecordedInfo::kSizeAndStatus);
}

bool sorted_ddt(const DmmConfig& c) {
  return c.block_structure == BlockStructure::kSinglySortedBySize ||
         c.block_structure == BlockStructure::kDoublySortedBySize ||
         c.block_structure == BlockStructure::kSizeBinaryTree;
}

}  // namespace

std::vector<RuleViolation> check_rules(const DmmConfig& c) {
  std::vector<RuleViolation> out;
  auto hard = [&](const char* trees, const char* why) {
    out.push_back({trees, why, true});
  };
  auto soft = [&](const char* trees, const char* why) {
    out.push_back({trees, why, false});
  };

  const bool fixed_pools = pool_blocks_fixed(c);

  // --- Fig. 3: Block tags restrict Block recorded info -------------------
  if (c.block_tags == BlockTags::kNone &&
      c.recorded_info != RecordedInfo::kNone) {
    hard("A3->A4", "no tag field exists, so nothing can be recorded in it");
  }
  if (c.block_tags != BlockTags::kNone &&
      c.recorded_info == RecordedInfo::kNone) {
    soft("A3->A4", "a tag field is reserved but records nothing (pure waste)");
  }
  // Footer-only tags cannot serve as the size source (the size word is
  // read at the block base); they only assist backward coalescing.
  if (c.block_tags == BlockTags::kFooter && !fixed_pools) {
    hard("A3->A2/B1",
         "footer-only tags cannot locate sizes for variable-size pools");
  }

  // --- variable-size pools need in-block size info (Fig. 3 family) -------
  if (!fixed_pools && !records_size(c)) {
    hard("A3/A4->A2/B1",
         "pools hosting several block sizes need per-block size info "
         "(or pool-per-size division)");
  }

  // --- A5 vs D2/E2: mechanisms and their schedules must agree ------------
  if (wants_split(c) != (c.split_when != SplitWhen::kNever)) {
    soft("A5->E2",
         "splitting mechanism present/absent but its schedule disagrees");
  }
  if (wants_coalesce(c) != (c.coalesce_when != CoalesceWhen::kNever)) {
    soft("A5->D2",
         "coalescing mechanism present/absent but its schedule disagrees");
  }

  // --- splitting requirements (Fig. 4 discussion) -------------------------
  if (c.split_when != SplitWhen::kNever) {
    if (!records_size(c)) {
      hard("A3/A4->E2",
           "cannot split without storing block sizes (Fig. 4: A3=none "
           "forces E2=never)");
    }
    if (fixed_pools) {
      soft("A2/B1->E2",
           "fixed-size pools never split (block sizes are invariant)");
    }
  }

  // --- coalescing requirements (Fig. 4 discussion) ------------------------
  if (c.coalesce_when != CoalesceWhen::kNever) {
    if (!records_size(c) || !records_status(c)) {
      hard("A3/A4->D2",
           "cannot coalesce without size and free/used status in blocks "
           "(Fig. 4: A3=none forces D2=never)");
    }
    if (fixed_pools) {
      soft("A2/B1->D2",
           "fixed-size pools never coalesce (merged sizes would leave the "
           "pool's size)");
    }
    if (c.coalesce_when == CoalesceWhen::kAlways &&
        c.block_tags == BlockTags::kHeader) {
      soft("A3->D2",
           "immediate coalescing without boundary footers is forward-only "
           "(misses half the merges)");
    }
    if (c.block_structure == BlockStructure::kSinglyLinkedList ||
        c.block_structure == BlockStructure::kSinglySortedBySize) {
      soft("A1->D2",
           "coalescing unlinks arbitrary neighbours; singly-linked "
           "structures degrade to linear-time removal (Sec. 5 picks the "
           "simplest DDT that allows coalescing: the doubly linked list)");
    }
  }

  // --- D1/E1 are meaningful only when their mechanism runs ----------------
  if (c.coalesce_when == CoalesceWhen::kNever &&
      c.coalesce_sizes != CoalesceSizes::kNotFixed) {
    soft("D2->D1", "max-block-size bound is dead when coalescing never runs");
  }
  if (c.split_when == SplitWhen::kNever &&
      c.split_sizes != SplitSizes::kNotFixed) {
    soft("E2->E1", "min-block-size bound is dead when splitting never runs");
  }
  // A2 fixed classes: flexible sizes must stay inside the class system.
  if (c.block_sizes == BlockSizes::kFixedClasses) {
    if (c.coalesce_when != CoalesceWhen::kNever &&
        c.coalesce_sizes != CoalesceSizes::kBoundedByClass) {
      hard("A2->D1",
           "fixed class sizes require coalescing bounded to class sizes");
    }
    if (c.split_when != SplitWhen::kNever &&
        c.split_sizes != SplitSizes::kBoundedByClass) {
      hard("A2->E1",
           "fixed class sizes require splitting bounded to class sizes");
    }
  }

  // --- A1 vs C2: self-ordering DDTs dictate the list discipline -----------
  if (sorted_ddt(c) && c.order != FreeListOrder::kSizeOrdered) {
    soft("A1->C2", "a size-sorted DDT overrides the free-list ordering");
  }
  // Sorting by size is pointless when every block has the same size.
  if (sorted_ddt(c) && fixed_pools) {
    soft("A1->A2/B1", "size-sorted DDT degenerates in fixed-size pools");
  }

  // --- C1 vs A1: positional fits have no meaning on a size tree -----------
  if (c.block_structure == BlockStructure::kSizeBinaryTree &&
      (c.fit == FitAlgorithm::kFirstFit || c.fit == FitAlgorithm::kNextFit)) {
    soft("A1->C1", "first/next fit degenerate to best fit on a size tree");
  }

  // --- B-category coherence ------------------------------------------------
  switch (c.pool_division) {
    case PoolDivision::kSinglePool:
      if (c.pool_count != PoolCount::kOne) {
        hard("B1->B3", "a single pool implies pool count = one");
      }
      break;
    case PoolDivision::kPoolPerSizeClass:
      if (c.pool_count == PoolCount::kOne) {
        hard("B1->B3", "per-class pools need a many-pool count policy");
      }
      break;
    case PoolDivision::kPoolPerExactSize:
      if (c.pool_count != PoolCount::kDynamic) {
        hard("B1->B3",
             "per-exact-size pools appear on demand: count must be dynamic");
      }
      break;
  }
  if (c.adaptivity == PoolAdaptivity::kStaticPreallocated) {
    if (c.pool_division != PoolDivision::kSinglePool) {
      hard("B4->B1",
           "a statically preallocated memory budget is modelled as one "
           "pool (per-pool static partitioning is a different system)");
    }
    // Coalescing still works inside a static pool; only the
    // give-back-to-OS effect is lost.  Dotted-arrow interdependency
    // (linked purposes), not a violation — see core/constraints.
  }

  return out;
}

bool is_valid(const DmmConfig& cfg) { return check_rules(cfg).empty(); }

std::optional<std::string> unsupported_reason(const DmmConfig& cfg) {
  for (const RuleViolation& v : check_rules(cfg)) {
    if (v.hard) return v.trees + ": " + v.reason;
  }
  return std::nullopt;
}

}  // namespace dmm::alloc
