#include "dmm/alloc/free_index.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dmm::alloc {

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::alloc::FreeIndex fatal: %s\n", what);
  std::abort();
}
}  // namespace

// Link overlays live at block + link_offset_, inside the free payload.
struct FreeIndex::ListNode {
  std::byte* next;
  std::byte* prev;  // present only for doubly-linked DDTs
};

struct FreeIndex::TreeNode {
  std::byte* left;
  std::byte* right;
  std::byte* parent;
};

FreeIndex::FreeIndex(BlockStructure ddt, KnobView knobs,
                     const BlockLayout& layout, std::size_t fixed_size)
    : ddt_(ddt),
      knobs_(knobs),
      link_offset_(layout.header_bytes()),
      layout_(layout),
      fixed_size_(fixed_size) {}

FreeIndex::FreeIndex(BlockStructure ddt, FreeListOrder pinned_order,
                     const BlockLayout& layout, std::size_t fixed_size)
    : ddt_(ddt),
      pinned_order_(pinned_order),
      link_offset_(layout.header_bytes()),
      layout_(layout),
      fixed_size_(fixed_size) {}

FreeListOrder FreeIndex::discipline() const {
  // Reading the C2 knob consults kOrder; self-ordering DDTs then override
  // it (the constraint engine reports such combinations as linked
  // decisions, not errors).  Even for them the consult stands: a config
  // differing in A1 is a hard (structure) change handled elsewhere.
  const FreeListOrder order = knobs_ ? knobs_->order() : pinned_order_;
  if (sorted_by_size() || ddt_ == BlockStructure::kSizeBinaryTree) {
    return FreeListOrder::kSizeOrdered;
  }
  return order;
}

std::size_t FreeIndex::link_bytes(BlockStructure ddt) {
  switch (ddt) {
    case BlockStructure::kSinglyLinkedList:
    case BlockStructure::kSinglySortedBySize:
      return sizeof(std::byte*);
    case BlockStructure::kDoublyLinkedList:
    case BlockStructure::kDoublySortedBySize:
      return 2 * sizeof(std::byte*);
    case BlockStructure::kSizeBinaryTree:
      return 3 * sizeof(std::byte*);
  }
  return 2 * sizeof(std::byte*);
}

FreeIndex::ListNode* FreeIndex::list_node(std::byte* b) const {
  return reinterpret_cast<ListNode*>(b + link_offset_);
}

FreeIndex::TreeNode* FreeIndex::tree_node(std::byte* b) const {
  return reinterpret_cast<TreeNode*>(b + link_offset_);
}

bool FreeIndex::doubly_linked() const {
  return ddt_ == BlockStructure::kDoublyLinkedList ||
         ddt_ == BlockStructure::kDoublySortedBySize;
}

bool FreeIndex::sorted_by_size() const {
  return ddt_ == BlockStructure::kSinglySortedBySize ||
         ddt_ == BlockStructure::kDoublySortedBySize;
}

// ---------------------------------------------------------------------------
// insert / remove / take dispatch
// ---------------------------------------------------------------------------

void FreeIndex::insert(std::byte* block) {
  if (count_ == 0) {
    // First resident block: every discipline files it identically (head =
    // tail = block, no scan), so the ordering knob is not consulted.
    if (ddt_ == BlockStructure::kSizeBinaryTree) {
      tree_insert(block);
    } else {
      list_push_front(block);
    }
  } else {
    // With at least one resident block the insertion position depends on
    // the ordering policy (C2): reading it through the view consults
    // kOrder — even for self-ordering DDTs, because a config differing in
    // A1 is a hard (structure) change handled elsewhere.
    const FreeListOrder order = discipline();
    if (ddt_ == BlockStructure::kSizeBinaryTree) {
      tree_insert(block);
    } else if (order == FreeListOrder::kSizeOrdered) {
      list_insert_sorted(block, /*by_size=*/true);
    } else if (order == FreeListOrder::kAddressOrdered) {
      list_insert_sorted(block, /*by_size=*/false);
    } else if (order == FreeListOrder::kFIFO) {
      list_push_back(block);
    } else {
      list_push_front(block);
    }
  }
  ++count_;
  bytes_ += size_of(block);
}

void FreeIndex::remove(std::byte* block) {
  if (ddt_ == BlockStructure::kSizeBinaryTree) {
    tree_remove(block);
  } else {
    list_unlink(block, doubly_linked() ? nullptr : list_prev_of(block));
  }
  --count_;
  bytes_ -= size_of(block);
}

std::byte* FreeIndex::take_fit(std::size_t need) {
  // The fit policy (C1) is read — and thereby consulted — only when the
  // choice could matter.  On a list with exactly one block every policy
  // scans that one node, takes it iff it fits, and updates the cursor
  // identically — no divergence until two candidates coexist.  On a 1-node
  // tree the policies already differ observably (worst fit descends the
  // right spine and charges different scan_steps than the >=-need
  // descent), so trees read the knob from one block.
  if (!knobs_) die("take_fit without a fit: pinned-policy index");
  if (count_ == 0) return nullptr;
  std::byte* b = nullptr;
  if (ddt_ == BlockStructure::kSizeBinaryTree) {
    b = tree_take(need, knobs_->fit());
  } else if (count_ == 1) {
    // Policy-free single-node path, bit-identical to every fit algorithm:
    // one scan step, take iff it fits, cursor lands past the taken block.
    ++scan_steps_;
    if (size_of(head_) >= need) {
      b = head_;
      cursor_ = list_node(b)->next;
      list_unlink(b, nullptr);
    }
  } else {
    b = list_take(need, knobs_->fit());
  }
  if (b != nullptr) {
    --count_;
    bytes_ -= size_of(b);
  }
  return b;
}

std::byte* FreeIndex::take_fit(std::size_t need, FitAlgorithm fit) {
  if (count_ == 0) return nullptr;
  std::byte* b = ddt_ == BlockStructure::kSizeBinaryTree
                     ? tree_take(need, fit)
                     : list_take(need, fit);
  if (b != nullptr) {
    --count_;
    bytes_ -= size_of(b);
  }
  return b;
}

std::byte* FreeIndex::pop_any() {
  if (count_ == 0) return nullptr;
  if (ddt_ == BlockStructure::kSizeBinaryTree) {
    std::byte* b = root_;
    tree_remove(b);
    --count_;
    bytes_ -= size_of(b);
    return b;
  }
  std::byte* b = head_;
  list_unlink(b, nullptr);
  --count_;
  bytes_ -= size_of(b);
  return b;
}

bool FreeIndex::contains(const std::byte* block) const {
  bool found = false;
  for_each([&](std::byte* b) { found = found || b == block; });
  return found;
}

void FreeIndex::for_each(const std::function<void(std::byte*)>& fn) const {
  if (ddt_ == BlockStructure::kSizeBinaryTree) {
    // In-order traversal with an explicit stack; fn must not mutate the
    // tree (library-internal contract, only tests and pool drains use it).
    std::vector<std::byte*> stack;
    std::byte* cur = root_;
    while (cur != nullptr || !stack.empty()) {
      while (cur != nullptr) {
        stack.push_back(cur);
        cur = tree_node(cur)->left;
      }
      cur = stack.back();
      stack.pop_back();
      std::byte* right = tree_node(cur)->right;
      fn(cur);
      cur = right;
    }
    return;
  }
  for (std::byte* b = head_; b != nullptr; b = list_node(b)->next) fn(b);
}

// ---------------------------------------------------------------------------
// list primitives
// ---------------------------------------------------------------------------

void FreeIndex::list_push_front(std::byte* b) {
  ListNode* n = list_node(b);
  n->next = head_;
  if (doubly_linked()) {
    n->prev = nullptr;
    if (head_ != nullptr) list_node(head_)->prev = b;
  }
  head_ = b;
  if (tail_ == nullptr) tail_ = b;
}

void FreeIndex::list_push_back(std::byte* b) {
  ListNode* n = list_node(b);
  n->next = nullptr;
  if (doubly_linked()) n->prev = tail_;
  if (tail_ != nullptr) {
    list_node(tail_)->next = b;
  } else {
    head_ = b;
  }
  tail_ = b;
}

void FreeIndex::list_insert_sorted(std::byte* b, bool by_size) {
  const std::size_t key = by_size ? size_of(b) : 0;
  std::byte* prev = nullptr;
  std::byte* cur = head_;
  while (cur != nullptr) {
    ++scan_steps_;
    const bool after = by_size ? (size_of(cur) < key ||
                                  (size_of(cur) == key && cur < b))
                               : (cur < b);
    if (!after) break;
    prev = cur;
    cur = list_node(cur)->next;
  }
  ListNode* n = list_node(b);
  n->next = cur;
  if (doubly_linked()) {
    n->prev = prev;
    if (cur != nullptr) list_node(cur)->prev = b;
  }
  if (prev != nullptr) {
    list_node(prev)->next = b;
  } else {
    head_ = b;
  }
  if (cur == nullptr) tail_ = b;
}

std::byte* FreeIndex::list_prev_of(std::byte* b) const {
  if (b == head_) return nullptr;
  for (std::byte* cur = head_; cur != nullptr; cur = list_node(cur)->next) {
    ++scan_steps_;
    if (list_node(cur)->next == b) return cur;
  }
  die("remove() of a block that is not in the free list");
}

void FreeIndex::list_unlink(std::byte* b, std::byte* prev_hint) {
  ListNode* n = list_node(b);
  std::byte* prev = doubly_linked() ? n->prev : prev_hint;
  if (b == head_) {
    head_ = n->next;
  } else if (prev != nullptr) {
    list_node(prev)->next = n->next;
  } else {
    die("unlink without predecessor");
  }
  if (doubly_linked() && n->next != nullptr) list_node(n->next)->prev = prev;
  if (b == tail_) tail_ = prev;
  if (cursor_ == b) cursor_ = n->next;
}

std::byte* FreeIndex::list_take(std::size_t need, FitAlgorithm fit) {
  auto scan_first = [&](std::byte* start) -> std::byte* {
    std::byte* prev = (start == head_) ? nullptr : list_prev_of(start);
    for (std::byte* cur = start; cur != nullptr;
         prev = cur, cur = list_node(cur)->next) {
      ++scan_steps_;
      if (size_of(cur) >= need) {
        cursor_ = list_node(cur)->next;
        list_unlink(cur, prev);
        return cur;
      }
    }
    return nullptr;
  };

  switch (fit) {
    case FitAlgorithm::kFirstFit:
      return head_ != nullptr ? scan_first(head_) : nullptr;
    case FitAlgorithm::kNextFit: {
      if (head_ == nullptr) return nullptr;
      std::byte* start = cursor_ != nullptr ? cursor_ : head_;
      // Scan [start, end), then wrap to [head, start).
      std::byte* prev = (start == head_) ? nullptr : list_prev_of(start);
      for (std::byte* cur = start; cur != nullptr;
           prev = cur, cur = list_node(cur)->next) {
        ++scan_steps_;
        if (size_of(cur) >= need) {
          cursor_ = list_node(cur)->next;
          list_unlink(cur, prev);
          return cur;
        }
      }
      prev = nullptr;
      for (std::byte* cur = head_; cur != start && cur != nullptr;
           prev = cur, cur = list_node(cur)->next) {
        ++scan_steps_;
        if (size_of(cur) >= need) {
          cursor_ = list_node(cur)->next;
          list_unlink(cur, prev);
          return cur;
        }
      }
      return nullptr;
    }
    case FitAlgorithm::kBestFit:
    case FitAlgorithm::kExactFit: {
      // On a size-sorted list, the first block >= need IS the best fit, and
      // an exact fit (if any) is encountered first among fitting blocks.
      // Reaching here implies count_ >= 2, so the ordering knob was already
      // consulted by the insert that made the list non-empty — the kOrder
      // note inside discipline() cannot move a first-consult earlier.
      const bool sorted = discipline() == FreeListOrder::kSizeOrdered;
      if (sorted) return head_ != nullptr ? scan_first(head_) : nullptr;
      std::byte* best = nullptr;
      std::byte* best_prev = nullptr;
      std::byte* prev = nullptr;
      for (std::byte* cur = head_; cur != nullptr;
           prev = cur, cur = list_node(cur)->next) {
        ++scan_steps_;
        const std::size_t sz = size_of(cur);
        if (sz < need) continue;
        if (best == nullptr || sz < size_of(best)) {
          best = cur;
          best_prev = prev;
          if (sz == need) break;  // cannot do better than exact
        }
      }
      // kExactFit differs from kBestFit only in *intent*: it insists on the
      // exact size when available and otherwise degrades to best fit, which
      // is the same choice best fit makes — but exact fit is typically
      // paired with always-split so the remainder is recovered (Sec. 5).
      if (best != nullptr) {
        cursor_ = list_node(best)->next;
        list_unlink(best, best_prev);
      }
      return best;
    }
    case FitAlgorithm::kWorstFit: {
      std::byte* worst = nullptr;
      std::byte* worst_prev = nullptr;
      std::byte* prev = nullptr;
      for (std::byte* cur = head_; cur != nullptr;
           prev = cur, cur = list_node(cur)->next) {
        ++scan_steps_;
        const std::size_t sz = size_of(cur);
        if (sz < need) continue;
        if (worst == nullptr || sz > size_of(worst)) {
          worst = cur;
          worst_prev = prev;
        }
      }
      if (worst != nullptr) {
        cursor_ = list_node(worst)->next;
        list_unlink(worst, worst_prev);
      }
      return worst;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// BST primitives — unbalanced binary search tree keyed by (size, address).
// Worst-case linear, expected logarithmic on the workloads' size mixes;
// the scan_steps counter exposes the real cost either way.
// ---------------------------------------------------------------------------

bool FreeIndex::tree_key_less(const std::byte* a, const std::byte* b) const {
  const std::size_t sa = size_of(a);
  const std::size_t sb = size_of(b);
  return sa < sb || (sa == sb && a < b);
}

void FreeIndex::tree_insert(std::byte* b) {
  TreeNode* n = tree_node(b);
  n->left = n->right = n->parent = nullptr;
  if (root_ == nullptr) {
    root_ = b;
    return;
  }
  std::byte* cur = root_;
  while (true) {
    ++scan_steps_;
    TreeNode* c = tree_node(cur);
    if (tree_key_less(b, cur)) {
      if (c->left == nullptr) {
        c->left = b;
        n->parent = cur;
        return;
      }
      cur = c->left;
    } else {
      if (c->right == nullptr) {
        c->right = b;
        n->parent = cur;
        return;
      }
      cur = c->right;
    }
  }
}

void FreeIndex::tree_remove(std::byte* b) {
  TreeNode* n = tree_node(b);

  auto replace_in_parent = [&](std::byte* child) {
    if (n->parent == nullptr) {
      root_ = child;
    } else {
      TreeNode* p = tree_node(n->parent);
      (p->left == b ? p->left : p->right) = child;
    }
    if (child != nullptr) tree_node(child)->parent = n->parent;
  };

  if (n->left != nullptr && n->right != nullptr) {
    // Two children: splice in the in-order successor (min of right subtree).
    std::byte* succ = n->right;
    while (tree_node(succ)->left != nullptr) {
      ++scan_steps_;
      succ = tree_node(succ)->left;
    }
    TreeNode* s = tree_node(succ);
    // Detach successor (it has no left child).
    if (s->parent != b) {
      TreeNode* sp = tree_node(s->parent);
      sp->left = s->right;
      if (s->right != nullptr) tree_node(s->right)->parent = s->parent;
      s->right = n->right;
      tree_node(n->right)->parent = succ;
    }
    s->left = n->left;
    if (n->left != nullptr) tree_node(n->left)->parent = succ;
    replace_in_parent(succ);
    return;
  }
  replace_in_parent(n->left != nullptr ? n->left : n->right);
}

std::byte* FreeIndex::tree_take(std::size_t need, FitAlgorithm fit) {
  if (root_ == nullptr) return nullptr;
  std::byte* found = nullptr;
  if (fit == FitAlgorithm::kWorstFit) {
    std::byte* cur = root_;
    while (tree_node(cur)->right != nullptr) {
      ++scan_steps_;
      cur = tree_node(cur)->right;
    }
    if (size_of(cur) >= need) found = cur;
  } else {
    // Best/exact/first/next all resolve to "smallest block >= need" on a
    // size-keyed tree (first/next have no positional meaning here; the
    // constraint engine flags those pairings as linked decisions).
    std::byte* cur = root_;
    while (cur != nullptr) {
      ++scan_steps_;
      if (size_of(cur) >= need) {
        found = cur;
        cur = tree_node(cur)->left;
      } else {
        cur = tree_node(cur)->right;
      }
    }
  }
  if (found != nullptr) tree_remove(found);
  return found;
}

// ---------------------------------------------------------------------------
// checkpoint save/restore
// ---------------------------------------------------------------------------

FreeIndex::Snapshot FreeIndex::save() const {
  Snapshot snap;
  snap.head = head_;
  snap.tail = tail_;
  snap.cursor = cursor_;
  snap.root = root_;
  snap.count = count_;
  snap.bytes = bytes_;
  snap.scan_steps = scan_steps_;
  return snap;
}

void FreeIndex::restore(const Snapshot& snap, std::ptrdiff_t delta) {
  const auto fix = [delta](std::byte* p) -> std::byte* {
    return p == nullptr ? nullptr : p + delta;
  };
  head_ = fix(snap.head);
  tail_ = fix(snap.tail);
  cursor_ = fix(snap.cursor);
  root_ = fix(snap.root);
  count_ = snap.count;
  bytes_ = snap.bytes;
  scan_steps_ = snap.scan_steps;
  if (delta == 0) return;  // restored slab bytes already hold valid links
  if (ddt_ == BlockStructure::kSizeBinaryTree) {
    // Each node is visited exactly once; the explicit stack tolerates the
    // degenerate linear shapes an unbalanced BST can take.
    std::vector<std::byte*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      std::byte* b = stack.back();
      stack.pop_back();
      TreeNode* n = tree_node(b);
      n->left = fix(n->left);
      n->right = fix(n->right);
      n->parent = fix(n->parent);
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
    }
    return;
  }
  // List walk: fix this node's links, then advance through the already
  // fixed next pointer.  An SLL's prev word is untouched garbage by design.
  for (std::byte* b = head_; b != nullptr;) {
    ListNode* n = list_node(b);
    n->next = fix(n->next);
    if (doubly_linked()) n->prev = fix(n->prev);
    b = n->next;
  }
}

}  // namespace dmm::alloc
