#include "dmm/alloc/config.h"

#include <sstream>

namespace dmm::alloc {

std::string to_string(BlockStructure v) {
  switch (v) {
    case BlockStructure::kSinglyLinkedList: return "sll";
    case BlockStructure::kDoublyLinkedList: return "dll";
    case BlockStructure::kSinglySortedBySize: return "sll-sorted";
    case BlockStructure::kDoublySortedBySize: return "dll-sorted";
    case BlockStructure::kSizeBinaryTree: return "size-bst";
  }
  return "?";
}

std::string to_string(BlockSizes v) {
  switch (v) {
    case BlockSizes::kFixedClasses: return "fixed-classes";
    case BlockSizes::kMany: return "many";
  }
  return "?";
}

std::string to_string(BlockTags v) {
  switch (v) {
    case BlockTags::kNone: return "none";
    case BlockTags::kHeader: return "header";
    case BlockTags::kFooter: return "footer";
    case BlockTags::kHeaderFooter: return "header+footer";
  }
  return "?";
}

std::string to_string(RecordedInfo v) {
  switch (v) {
    case RecordedInfo::kNone: return "none";
    case RecordedInfo::kSize: return "size";
    case RecordedInfo::kStatus: return "status";
    case RecordedInfo::kSizeAndStatus: return "size+status";
  }
  return "?";
}

std::string to_string(FlexibleBlockSize v) {
  switch (v) {
    case FlexibleBlockSize::kNone: return "none";
    case FlexibleBlockSize::kSplitOnly: return "split-only";
    case FlexibleBlockSize::kCoalesceOnly: return "coalesce-only";
    case FlexibleBlockSize::kSplitAndCoalesce: return "split+coalesce";
  }
  return "?";
}

std::string to_string(PoolDivision v) {
  switch (v) {
    case PoolDivision::kSinglePool: return "single-pool";
    case PoolDivision::kPoolPerSizeClass: return "per-size-class";
    case PoolDivision::kPoolPerExactSize: return "per-exact-size";
  }
  return "?";
}

std::string to_string(PoolStructure v) {
  switch (v) {
    case PoolStructure::kArray: return "array";
    case PoolStructure::kLinkedList: return "linked-list";
  }
  return "?";
}

std::string to_string(PoolCount v) {
  switch (v) {
    case PoolCount::kOne: return "one";
    case PoolCount::kStaticMany: return "static-many";
    case PoolCount::kDynamic: return "dynamic";
  }
  return "?";
}

std::string to_string(PoolAdaptivity v) {
  switch (v) {
    case PoolAdaptivity::kStaticPreallocated: return "static";
    case PoolAdaptivity::kGrowOnly: return "grow-only";
    case PoolAdaptivity::kGrowAndShrink: return "grow+shrink";
  }
  return "?";
}

std::string to_string(FitAlgorithm v) {
  switch (v) {
    case FitAlgorithm::kFirstFit: return "first-fit";
    case FitAlgorithm::kNextFit: return "next-fit";
    case FitAlgorithm::kBestFit: return "best-fit";
    case FitAlgorithm::kWorstFit: return "worst-fit";
    case FitAlgorithm::kExactFit: return "exact-fit";
  }
  return "?";
}

std::string to_string(FreeListOrder v) {
  switch (v) {
    case FreeListOrder::kLIFO: return "lifo";
    case FreeListOrder::kFIFO: return "fifo";
    case FreeListOrder::kAddressOrdered: return "addr-ordered";
    case FreeListOrder::kSizeOrdered: return "size-ordered";
  }
  return "?";
}

std::string to_string(CoalesceSizes v) {
  switch (v) {
    case CoalesceSizes::kNotFixed: return "not-fixed";
    case CoalesceSizes::kBoundedByClass: return "bounded";
  }
  return "?";
}

std::string to_string(CoalesceWhen v) {
  switch (v) {
    case CoalesceWhen::kNever: return "never";
    case CoalesceWhen::kDeferred: return "deferred";
    case CoalesceWhen::kAlways: return "always";
  }
  return "?";
}

std::string to_string(SplitSizes v) {
  switch (v) {
    case SplitSizes::kNotFixed: return "not-fixed";
    case SplitSizes::kBoundedByClass: return "bounded";
  }
  return "?";
}

std::string to_string(SplitWhen v) {
  switch (v) {
    case SplitWhen::kNever: return "never";
    case SplitWhen::kDeferred: return "deferred";
    case SplitWhen::kAlways: return "always";
  }
  return "?";
}

std::string describe(const DmmConfig& c) {
  std::ostringstream os;
  os << "A1 block structure     : " << to_string(c.block_structure) << '\n'
     << "A2 block sizes         : " << to_string(c.block_sizes) << '\n'
     << "A3 block tags          : " << to_string(c.block_tags) << '\n'
     << "A4 recorded info       : " << to_string(c.recorded_info) << '\n'
     << "A5 flexible block size : " << to_string(c.flexible) << '\n'
     << "B1 pool division       : " << to_string(c.pool_division) << '\n'
     << "B2 pool structure      : " << to_string(c.pool_structure) << '\n'
     << "B3 pool count          : " << to_string(c.pool_count) << '\n'
     << "B4 pool adaptivity     : " << to_string(c.adaptivity) << '\n'
     << "C1 fit algorithm       : " << to_string(c.fit) << '\n'
     << "C2 free-list order     : " << to_string(c.order) << '\n'
     << "D1 coalesce sizes      : " << to_string(c.coalesce_sizes) << '\n'
     << "D2 coalesce when       : " << to_string(c.coalesce_when) << '\n'
     << "E1 split sizes         : " << to_string(c.split_sizes) << '\n'
     << "E2 split when          : " << to_string(c.split_when) << '\n';
  return os.str();
}

std::string signature(const DmmConfig& c) {
  std::ostringstream os;
  os << "A1=" << to_string(c.block_structure)
     << " A2=" << to_string(c.block_sizes)
     << " A3=" << to_string(c.block_tags)
     << " A4=" << to_string(c.recorded_info)
     << " A5=" << to_string(c.flexible)
     << " B1=" << to_string(c.pool_division)
     << " B2=" << to_string(c.pool_structure)
     << " B3=" << to_string(c.pool_count)
     << " B4=" << to_string(c.adaptivity)
     << " C1=" << to_string(c.fit)
     << " C2=" << to_string(c.order)
     << " D1=" << to_string(c.coalesce_sizes)
     << " D2=" << to_string(c.coalesce_when)
     << " E1=" << to_string(c.split_sizes)
     << " E2=" << to_string(c.split_when);
  return os.str();
}

DmmConfig drr_paper_config() {
  // Sec. 5 decision walk for DRR, in the published order:
  //   A2=many, A5=split&coalesce, E2=always, D2=always, E1=not fixed,
  //   D1=not fixed, B4 (grow+shrink: "returned back to the system"),
  //   B1=single pool (+B2 simplest), C1=exact fit, A1=double linked list,
  //   A3/A4=header with size and status.
  DmmConfig c;
  c.block_sizes = BlockSizes::kMany;
  c.flexible = FlexibleBlockSize::kSplitAndCoalesce;
  c.split_when = SplitWhen::kAlways;
  c.coalesce_when = CoalesceWhen::kAlways;
  c.split_sizes = SplitSizes::kNotFixed;
  c.coalesce_sizes = CoalesceSizes::kNotFixed;
  c.adaptivity = PoolAdaptivity::kGrowAndShrink;
  c.pool_division = PoolDivision::kSinglePool;
  c.pool_structure = PoolStructure::kArray;
  c.pool_count = PoolCount::kOne;
  c.fit = FitAlgorithm::kExactFit;
  c.block_structure = BlockStructure::kDoublyLinkedList;
  // The paper says "header field ... information about the size and status";
  // backward coalescing additionally needs the boundary footer, which the
  // layout engine only emits on free blocks (dlmalloc trick), so the
  // full-tags choice costs nothing on live blocks.
  c.block_tags = BlockTags::kHeaderFooter;
  c.recorded_info = RecordedInfo::kSizeAndStatus;
  return c;
}

DmmConfig minimal_config() {
  DmmConfig c;
  c.block_structure = BlockStructure::kSinglyLinkedList;
  c.block_sizes = BlockSizes::kMany;
  c.block_tags = BlockTags::kNone;
  c.recorded_info = RecordedInfo::kNone;
  c.flexible = FlexibleBlockSize::kNone;
  c.pool_division = PoolDivision::kPoolPerExactSize;
  c.pool_structure = PoolStructure::kArray;
  c.pool_count = PoolCount::kDynamic;
  c.adaptivity = PoolAdaptivity::kGrowOnly;
  c.fit = FitAlgorithm::kFirstFit;
  c.order = FreeListOrder::kLIFO;
  c.coalesce_sizes = CoalesceSizes::kNotFixed;
  c.coalesce_when = CoalesceWhen::kNever;
  c.split_sizes = SplitSizes::kNotFixed;
  c.split_when = SplitWhen::kNever;
  return c;
}

DmmConfig fig4_wrong_order_config() {
  // Fig. 4: deciding A3 first picks "none" to save the per-block field,
  // which (after constraint propagation) forces D2=E2=never — the manager
  // can no longer fight fragmentation at all.
  DmmConfig c = drr_paper_config();
  c.block_tags = BlockTags::kNone;
  c.recorded_info = RecordedInfo::kNone;
  c.flexible = FlexibleBlockSize::kNone;
  c.split_when = SplitWhen::kNever;
  c.coalesce_when = CoalesceWhen::kNever;
  // Without size tags the manager must divide pools by size so it can
  // recover block sizes from pool membership (Fig. 3 interdependency).
  c.pool_division = PoolDivision::kPoolPerExactSize;
  c.pool_count = PoolCount::kDynamic;
  c.block_structure = BlockStructure::kSinglyLinkedList;
  c.fit = FitAlgorithm::kFirstFit;
  return c;
}

DmmConfig canonical(const DmmConfig& cfg) {
  DmmConfig c = cfg;
  const DmmConfig defaults{};
  const bool can_split = (c.flexible == FlexibleBlockSize::kSplitOnly ||
                          c.flexible == FlexibleBlockSize::kSplitAndCoalesce) &&
                         c.split_when != SplitWhen::kNever;
  const bool can_coalesce =
      (c.flexible == FlexibleBlockSize::kCoalesceOnly ||
       c.flexible == FlexibleBlockSize::kSplitAndCoalesce) &&
      c.coalesce_when != CoalesceWhen::kNever;
  // A mechanism acts only when A5 grants it AND its schedule runs (the
  // Pool gates on both), so the pair collapses to its effective value:
  // "granted but never scheduled" and "scheduled but not granted" build
  // the same manager as "off".
  c.flexible = can_split && can_coalesce ? FlexibleBlockSize::kSplitAndCoalesce
               : can_split               ? FlexibleBlockSize::kSplitOnly
               : can_coalesce            ? FlexibleBlockSize::kCoalesceOnly
                                         : FlexibleBlockSize::kNone;
  if (!can_split) c.split_when = SplitWhen::kNever;
  if (!can_coalesce) c.coalesce_when = CoalesceWhen::kNever;
  // B3 (pool count) is consulted only when pools are divided by size
  // class: the constructor pre-creates the kStaticMany roster and route()
  // grows the kDynamic one, both only under kPoolPerSizeClass.  A
  // single-pool manager creates pool 0 unconditionally and a per-exact-
  // size manager makes pools on first sight of a size whatever B3 says —
  // no branch of CustomManager/Pool reads pool_count under those
  // divisions, so every B3 leaf builds the same manager doing the same
  // work (routing_steps included).  Collapse to the representative the
  // B1->B3 hard rules force anyway, so near-miss invalid aliases also
  // unify.  B2 (pool structure) must NOT collapse even for a single
  // pool: find_pool's linked-list scan charges one routing step per
  // lookup where the array path charges none, and work_steps is both a
  // tie-break and the time_weight objective term — see
  // test_search_strategies.cpp (B2SinglePoolAliasesStayDistinct).
  if (c.pool_division == PoolDivision::kSinglePool) {
    c.pool_count = PoolCount::kOne;
  } else if (c.pool_division == PoolDivision::kPoolPerExactSize) {
    c.pool_count = PoolCount::kDynamic;
  }
  // Self-ordering DDTs ignore the C2 discipline (FreeIndex overrides it).
  if (c.block_structure == BlockStructure::kSinglySortedBySize ||
      c.block_structure == BlockStructure::kDoublySortedBySize ||
      c.block_structure == BlockStructure::kSizeBinaryTree) {
    c.order = FreeListOrder::kSizeOrdered;
  }
  if (!can_split) {
    c.split_sizes = defaults.split_sizes;
    c.deferred_split_min = defaults.deferred_split_min;
  } else if (c.split_when != SplitWhen::kDeferred) {
    c.deferred_split_min = defaults.deferred_split_min;
  }
  if (!can_coalesce) c.coalesce_sizes = defaults.coalesce_sizes;
  const bool class_bounded =
      (can_split && c.split_sizes == SplitSizes::kBoundedByClass) ||
      (can_coalesce && c.coalesce_sizes == CoalesceSizes::kBoundedByClass);
  if (!class_bounded) c.max_class_log2 = defaults.max_class_log2;
  if (c.adaptivity == PoolAdaptivity::kStaticPreallocated) {
    // Static managers never take the dedicated-chunk path (chunk_bytes
    // still shapes the one up-front grant, so it stays).
    c.big_request_bytes = defaults.big_request_bytes;
  } else {
    c.static_pool_bytes = defaults.static_pool_bytes;
  }
  return c;
}

std::size_t hash_combine(std::size_t seed, std::size_t value) {
  seed ^= value;
  seed *= 1099511628211ull;  // FNV prime
  return seed;
}

std::size_t hash_value(const DmmConfig& cfg) {
  std::size_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  mix(static_cast<std::size_t>(cfg.block_structure));
  mix(static_cast<std::size_t>(cfg.block_sizes));
  mix(static_cast<std::size_t>(cfg.block_tags));
  mix(static_cast<std::size_t>(cfg.recorded_info));
  mix(static_cast<std::size_t>(cfg.flexible));
  mix(static_cast<std::size_t>(cfg.pool_division));
  mix(static_cast<std::size_t>(cfg.pool_structure));
  mix(static_cast<std::size_t>(cfg.pool_count));
  mix(static_cast<std::size_t>(cfg.adaptivity));
  mix(static_cast<std::size_t>(cfg.fit));
  mix(static_cast<std::size_t>(cfg.order));
  mix(static_cast<std::size_t>(cfg.coalesce_sizes));
  mix(static_cast<std::size_t>(cfg.coalesce_when));
  mix(static_cast<std::size_t>(cfg.split_sizes));
  mix(static_cast<std::size_t>(cfg.split_when));
  mix(cfg.chunk_bytes);
  mix(cfg.big_request_bytes);
  mix(cfg.static_pool_bytes);
  mix(cfg.deferred_split_min);
  mix(static_cast<std::size_t>(cfg.max_class_log2));
  return h;
}

}  // namespace dmm::alloc
