#ifndef DMM_ALLOC_CHUNK_H
#define DMM_ALLOC_CHUNK_H

#include <cstddef>
#include <map>

namespace dmm::alloc {

class Pool;

/// In-band header at the start of every chunk a manager obtains from the
/// SystemArena.  Blocks are carved from the *data area* behind the header;
/// the not-yet-carved tail is the chunk's "wilderness":
///
///   [ChunkHeader | carved blocks ........ | wilderness ............ ]
///   base          data()                   base+bump                end()
///
/// The header is part of the chunk, so pool bookkeeping is charged to the
/// footprint exactly like the paper's "organization overhead".
struct alignas(16) ChunkHeader {
  std::size_t chunk_size = 0;   ///< total bytes including this header
  std::size_t bump = 0;         ///< offset of the wilderness start
  std::size_t live_blocks = 0;  ///< allocated (not freed) blocks inside
  Pool* owner = nullptr;        ///< owning pool; nullptr = dedicated chunk
  ChunkHeader* next = nullptr;  ///< pool's chunk list
  ChunkHeader* prev = nullptr;

  [[nodiscard]] std::byte* base() { return reinterpret_cast<std::byte*>(this); }
  [[nodiscard]] const std::byte* base() const {
    return reinterpret_cast<const std::byte*>(this);
  }
  [[nodiscard]] std::byte* data() { return base() + sizeof(ChunkHeader); }
  [[nodiscard]] const std::byte* data() const {
    return base() + sizeof(ChunkHeader);
  }
  [[nodiscard]] std::byte* end() { return base() + chunk_size; }
  [[nodiscard]] const std::byte* end() const { return base() + chunk_size; }
  [[nodiscard]] std::byte* wilderness() { return base() + bump; }
  [[nodiscard]] std::size_t wilderness_bytes() const {
    return chunk_size - bump;
  }
  [[nodiscard]] std::size_t data_bytes() const {
    return chunk_size - sizeof(ChunkHeader);
  }
  /// True iff @p p points inside this chunk's data area.
  [[nodiscard]] bool contains(const void* p) const {
    auto* q = static_cast<const std::byte*>(p);
    return q >= data() && q < end();
  }

  void init(std::size_t total_size, Pool* pool) {
    chunk_size = total_size;
    bump = sizeof(ChunkHeader);
    live_blocks = 0;
    owner = pool;
    next = prev = nullptr;
  }
};

static_assert(sizeof(ChunkHeader) % 16 == 0,
              "chunk header must preserve block alignment");

/// Address index over live chunks: pointer -> owning chunk.
///
/// A production allocator derives the chunk base by address masking
/// (chunks are naturally aligned); the simulated arena hands out
/// malloc-aligned chunks instead, so this host-side map stands in for that
/// masking.  It is bookkeeping the real system gets for free and is
/// therefore not charged to the footprint (see DESIGN.md).
class ChunkIndex {
 public:
  void add(ChunkHeader* chunk) { by_base_[chunk->base()] = chunk; }

  void remove(ChunkHeader* chunk) {
    if (last_ == chunk) last_ = nullptr;
    by_base_.erase(chunk->base());
  }

  /// Chunk whose [base, end) range contains @p p, or nullptr.
  [[nodiscard]] ChunkHeader* find(const void* p) const {
    // One-entry cache: allocator traffic is strongly chunk-local.
    auto* q = static_cast<const std::byte*>(p);
    if (last_ != nullptr && q >= last_->base() && q < last_->end()) {
      return last_;
    }
    auto it = by_base_.upper_bound(q);
    if (it == by_base_.begin()) return nullptr;
    --it;
    ChunkHeader* c = it->second;
    if (q >= c->end()) return nullptr;
    last_ = c;
    return c;
  }

  [[nodiscard]] std::size_t size() const { return by_base_.size(); }

  /// Drops every entry (checkpoint restore rebuilds the index wholesale).
  void clear() {
    by_base_.clear();
    last_ = nullptr;
  }

  /// Visits every chunk in ascending base-address order (deterministic —
  /// the backing map is ordered), for checkpoint capture.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [base, chunk] : by_base_) fn(chunk);
  }

 private:
  // dmm-lint: allow(ptr-order): addresses are slab-relative, so the order is deterministic
  std::map<const std::byte*, ChunkHeader*> by_base_;
  mutable ChunkHeader* last_ = nullptr;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_CHUNK_H
