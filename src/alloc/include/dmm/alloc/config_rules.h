#ifndef DMM_ALLOC_CONFIG_RULES_H
#define DMM_ALLOC_CONFIG_RULES_H

#include <optional>
#include <string>
#include <vector>

#include "dmm/alloc/config.h"

namespace dmm::alloc {

/// Whether the decision vector yields *fixed-size pools* (every block in a
/// pool has one size, so size/status are recoverable from pool membership
/// alone — the Fig. 3 escape hatch when blocks carry no tags).
[[nodiscard]] bool pool_blocks_fixed(const DmmConfig& cfg);

/// One violated interdependency: which trees clash and why.
struct RuleViolation {
  std::string trees;   ///< e.g. "A3->A4"
  std::string reason;  ///< human-readable explanation
  bool hard;           ///< true: the manager cannot operate at all;
                       ///< false: it runs but the combination is incoherent
                       ///< (a decision is shadowed by another tree)
};

/// Checks every interdependency of the search space (paper Fig. 2) against
/// a full decision vector.  An empty result means the vector denotes one
/// coherent atomic DM manager.
[[nodiscard]] std::vector<RuleViolation> check_rules(const DmmConfig& cfg);

/// True iff check_rules() returns no violations (hard or soft).
[[nodiscard]] bool is_valid(const DmmConfig& cfg);

/// First *hard* violation, if any — CustomManager refuses these vectors.
[[nodiscard]] std::optional<std::string> unsupported_reason(
    const DmmConfig& cfg);

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_CONFIG_RULES_H
