#ifndef DMM_ALLOC_STL_ADAPTOR_H
#define DMM_ALLOC_STL_ADAPTOR_H

#include <cstddef>
#include <new>

#include "dmm/alloc/allocator.h"

namespace dmm::alloc {

/// std::allocator-compatible bridge so the case-study applications can run
/// real standard containers (vectors of packets, lists of corners, ...)
/// on top of any dmm manager — the way the paper's C++ library is used.
///
/// Propagates on copy/move/swap so containers keep talking to the same
/// manager across rebinds and moves.
template <typename T>
class StlAdaptor {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit StlAdaptor(Allocator& manager) noexcept : manager_(&manager) {}

  template <typename U>
  StlAdaptor(const StlAdaptor<U>& other) noexcept
      : manager_(other.manager_) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    void* p = manager_->allocate(n * sizeof(T));
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { manager_->deallocate(p); }

  [[nodiscard]] Allocator& manager() const noexcept { return *manager_; }

  template <typename U>
  [[nodiscard]] bool operator==(const StlAdaptor<U>& rhs) const noexcept {
    return manager_ == rhs.manager_;
  }

 private:
  template <typename U>
  friend class StlAdaptor;

  Allocator* manager_;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_STL_ADAPTOR_H
