#ifndef DMM_ALLOC_POLICY_CORE_H
#define DMM_ALLOC_POLICY_CORE_H

#include "dmm/alloc/custom_manager.h"

namespace dmm::alloc {

// ---------------------------------------------------------------------------
// The policy-core / runtime-front split.
//
// Everything the methodology designs lives in the *policy core*: pool
// layout and routing (B trees), fit and ordering decisions (C trees),
// split/coalesce mechanics (A5, D, E trees), all read through the typed
// knob accessors of knobs.h so consult bookkeeping stays sound.  The core
// is deliberately single-threaded and bit-deterministic — the properties
// replay scoring (core/simulator.h), checkpoint resume (core/checkpoint.h)
// and the EvalEngine candidate cache depend on.  CustomManager IS that
// core; this alias names the role so call sites can say which contract
// they rely on:
//
//   * design-side users (simulator, checkpoint, eval engine, methodology)
//     build a PolicyCore per candidate and replay traces through it —
//     they need determinism and must never see locks or caches;
//   * the deployable front (runtime/designed_allocator.h) owns exactly one
//     PolicyCore behind a lock and layers per-thread caches, OOM policy
//     and telemetry on top — concerns the design side must never score.
//
// Keeping the split at the type level (one class, two named roles) rather
// than forking the allocator is what guarantees the deployed layout is
// byte-for-byte the layout the offline search evaluated.
// ---------------------------------------------------------------------------

using PolicyCore = CustomManager;

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_POLICY_CORE_H
