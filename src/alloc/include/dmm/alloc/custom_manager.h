#ifndef DMM_ALLOC_CUSTOM_MANAGER_H
#define DMM_ALLOC_CUSTOM_MANAGER_H

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/block_layout.h"
#include "dmm/alloc/chunk.h"
#include "dmm/alloc/config.h"
#include "dmm/alloc/knobs.h"
#include "dmm/alloc/pool.h"

namespace dmm::alloc {

/// The paper's *atomic DM manager*: a working allocator synthesised from a
/// full decision vector (one leaf per tree of the Fig. 1 search space).
///
/// This is the executable semantics of the search space — the exploration
/// engine builds one CustomManager per candidate vector and replays the
/// profiled allocation trace through it to score the vector's footprint.
///
/// In the policy-core / runtime-front split (see policy_core.h) this class
/// is the *policy core*: deliberately single-threaded, bit-deterministic,
/// every soft-knob read routed through the typed accessors below.  Ship it
/// behind runtime::DesignedAllocator (src/runtime) when live concurrent
/// malloc/free traffic, an OOM policy, or telemetry is needed; use it bare
/// for replay, scoring, and checkpointing.
///
/// The constructor aborts on decision vectors with *hard* interdependency
/// violations (see config_rules.h); validate first with is_valid().
///
/// Requests >= cfg.big_request_bytes take a dedicated-chunk path (the
/// standard mmap-threshold engineering floor): one chunk per block,
/// released straight back to the arena when pool adaptivity allows, else
/// cached for reuse.
class CustomManager : public Allocator, private PoolHost {
 public:
  /// @param strict_accounting  track per-pointer requested sizes (exact
  ///        live-byte accounting, double-free detection).  Disable only in
  ///        timing benchmarks.
  CustomManager(sysmem::SystemArena& arena, const DmmConfig& cfg,
                std::string name = "custom", bool strict_accounting = true);
  ~CustomManager() override;

  [[nodiscard]] void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr) override;
  [[nodiscard]] std::size_t usable_size(const void* ptr) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const DmmConfig& config() const { return cfg_; }
  [[nodiscard]] const BlockLayout& layout() const { return layout_; }

  /// Total block size (header included) that a payload request of
  /// @p payload bytes occupies under this configuration.
  [[nodiscard]] std::size_t block_size_for_request(std::size_t payload) const;

  /// Architecture-neutral work measure: free-structure traversal steps plus
  /// pool-routing steps.  Used by the performance benches alongside wall
  /// time.
  [[nodiscard]] std::uint64_t work_steps() const;

  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }

  /// Deep consistency check over every pool (tests only; O(n^2)).
  void check_integrity() const;

  /// Where the footprint goes — the paper's Sec. 4.1 factors of influence:
  /// organization overhead (fields + assisting structures) versus
  /// fragmentation waste, measured live from the manager's state.
  struct FootprintBreakdown {
    std::size_t footprint = 0;        ///< bytes held from the arena
    std::size_t live_payload = 0;     ///< application demand
    std::size_t header_overhead = 0;  ///< tag fields of live blocks (A3/A4)
    std::size_t chunk_headers = 0;    ///< pool assisting structures (B)
    std::size_t free_cached = 0;      ///< free blocks threaded in indexes
    std::size_t wilderness = 0;       ///< uncarved chunk tails
    std::size_t big_cache = 0;        ///< cached dedicated chunks
    /// Internal fragmentation: allocated capacity beyond the requests
    /// (rounding, unsplit remainders).  Derived as the residue.
    [[nodiscard]] std::size_t internal_fragmentation() const {
      const std::size_t accounted = live_payload + header_overhead +
                                    chunk_headers + free_cached +
                                    wilderness + big_cache;
      return footprint > accounted ? footprint - accounted : 0;
    }
  };

  /// Snapshot of the current footprint decomposition.  Requires strict
  /// accounting (live_payload must be exact).
  [[nodiscard]] FootprintBreakdown breakdown() const;

  /// Checkpoint image for incremental replay.  All chunk/block pointers are
  /// capture-time slab addresses; restore_state relocates them against the
  /// restoring arena's slab base.  Must be paired with the arena's
  /// ArenaSnapshot captured at the same instant.
  struct State : AllocatorState {
    struct PoolImage {
      std::size_t key = 0;
      std::size_t fixed_size = 0;
      Pool::Snapshot snap;
    };
    const std::byte* old_base = nullptr;  ///< slab base at capture
    std::vector<PoolImage> pools;         ///< roster in creation order
    std::vector<ChunkHeader*> chunks;     ///< every indexed chunk, addr order
    std::vector<ChunkHeader*> big_cache;  ///< scan order is behaviour
    std::size_t big_cache_bytes = 0;
    std::vector<std::pair<const void*, std::size_t>> requested;
    std::uint64_t routing_steps = 0;
    bool static_exhausted = false;
    AllocatorStats stats;
  };

  [[nodiscard]] std::unique_ptr<AllocatorState> save_state() const override;

  /// Restores a State captured from a manager whose constructor-created
  /// pool roster is a prefix of the snapshot's (guaranteed when the
  /// structure-defining knobs match); creates the dynamically-made pools,
  /// relocates every pointer, and rebuilds the chunk index.  Returns false
  /// on a roster mismatch — the caller replays cold.
  [[nodiscard]] bool restore_state(const AllocatorState& state) override;

 private:
  struct PoolEntry {
    std::size_t key;  ///< class index or exact block size, per division
    std::unique_ptr<Pool> pool;
  };
  struct Route {
    Pool* pool;
    std::size_t block_size;
  };

  [[nodiscard]] std::size_t class_pool_block_size(unsigned idx) const;
  [[nodiscard]] Route route(std::size_t request);
  [[nodiscard]] Pool* find_pool(std::size_t key);
  Pool* make_pool(std::size_t key, std::size_t fixed_block_size);

  // PoolHost (chunk services for the pools)
  ChunkHeader* pool_grow(std::size_t min_data_bytes) override;
  void pool_release(ChunkHeader* chunk) override;
  [[nodiscard]] ChunkHeader* pool_find_chunk(const void* p) override {
    return chunk_index_.find(p);
  }
  [[nodiscard]] AllocatorStats& pool_stats() override { return stats_; }

  [[nodiscard]] void* big_allocate(std::size_t payload);
  void big_deallocate(ChunkHeader* chunk, void* ptr);

  DmmConfig cfg_;
  /// Typed views over cfg_ (see knobs.h): hard_ for consult-free structure
  /// knobs, knobs_ for soft knobs whose reads note their ConsultGroup.
  /// All decision-path reads below go through these, never cfg_ directly.
  HardKnobs hard_{cfg_};
  KnobView knobs_{cfg_};
  BlockLayout layout_;
  std::size_t link_bytes_;
  std::string name_;
  bool strict_;

  ChunkIndex chunk_index_;
  std::vector<PoolEntry> pools_;
  /// Array routing (B2) for per-class division: class index -> pools_ slot.
  std::vector<int> class_slot_;
  /// Array routing (B2) for per-exact division: block size -> pools_ slot.
  std::unordered_map<std::size_t, std::size_t> exact_slot_;
  /// Dedicated big chunks currently cached for reuse (grow-only mode).
  std::vector<ChunkHeader*> big_cache_;
  std::size_t big_cache_bytes_ = 0;

  /// strict accounting: payload pointer -> requested bytes.
  std::unordered_map<const void*, std::size_t> requested_;
  mutable std::uint64_t routing_steps_ = 0;
  bool static_exhausted_ = false;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_CUSTOM_MANAGER_H
