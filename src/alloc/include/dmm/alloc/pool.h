#ifndef DMM_ALLOC_POOL_H
#define DMM_ALLOC_POOL_H

#include <cstddef>
#include <functional>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/block_layout.h"
#include "dmm/alloc/chunk.h"
#include "dmm/alloc/config.h"
#include "dmm/alloc/free_index.h"
#include "dmm/alloc/knobs.h"

namespace dmm::alloc {

/// One memory pool (the paper's "memory region"): a set of chunks plus a
/// free structure, executing the block-level mechanisms of the decision
/// vector — carving, fit (C1/C2 via FreeIndex), splitting (E1/E2) and
/// coalescing (D1/D2) — within its chunks.
///
/// Pools are *fixed-size* (every block has the same total size; size and
/// status can then be inferred from pool membership alone — the escape
/// hatch the Fig. 3 interdependency needs when A3 = none) or
/// *variable-size* (sizes read from block headers; requires A4 size info).
///
/// Growth/shrink traffic with the arena goes through the owner-provided
/// hooks so the manager can centralise chunk indexing and accounting.
/// Chunk services a Pool needs from its owning manager.  A plain virtual
/// interface (not std::function) — these sit on the allocation hot path.
class PoolHost {
 public:
  virtual ~PoolHost() = default;
  /// Obtains a fresh chunk whose data area holds >= min_data_bytes.
  virtual ChunkHeader* pool_grow(std::size_t min_data_bytes) = 0;
  /// Returns an empty chunk to the arena.
  virtual void pool_release(ChunkHeader* chunk) = 0;
  /// Resolves the chunk containing a block (manager's ChunkIndex).
  [[nodiscard]] virtual ChunkHeader* pool_find_chunk(const void* p) = 0;
  /// Shared mechanism counters (splits/coalesces/...).
  [[nodiscard]] virtual AllocatorStats& pool_stats() = 0;
};

class Pool {
 public:
  /// @param fixed_block_size  0 = variable-size pool; otherwise every
  ///        block in the pool has exactly this total size.
  Pool(const DmmConfig& cfg, const BlockLayout& layout,
       std::size_t fixed_block_size, PoolHost& host);

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool();

  /// Allocates a block of @p block_size total bytes (header included).
  /// For fixed pools @p block_size must equal fixed_block_size().
  /// Returns the block base (not the payload), or nullptr if the pool
  /// cannot grow.
  [[nodiscard]] std::byte* allocate_block(std::size_t block_size);

  /// Releases a block back to the pool.  @p chunk must be the chunk that
  /// contains it (the manager resolves it through its ChunkIndex).
  void free_block(std::byte* block, std::size_t block_size,
                  ChunkHeader* chunk);

  /// Deferred-coalescing sweep over all chunks: merges every run of
  /// adjacent free blocks and retreats wilderness over trailing runs.
  /// Returns the number of merges performed.
  std::size_t coalesce_sweep();

  /// Grows the pool by one chunk holding at least @p data_bytes of data
  /// without allocating from it (used for static preallocation).
  /// Returns the chunk, or nullptr if the arena refuses.
  ChunkHeader* grow_reserve(std::size_t data_bytes);

  /// Size of the block starting at @p block, via header or fixed size.
  [[nodiscard]] std::size_t block_size_of(const std::byte* block) const;

  [[nodiscard]] std::size_t fixed_block_size() const { return fixed_size_; }
  [[nodiscard]] bool is_fixed() const { return fixed_size_ != 0; }
  [[nodiscard]] FreeIndex& index() { return index_; }
  [[nodiscard]] const FreeIndex& index() const { return index_; }
  [[nodiscard]] ChunkHeader* chunks() const { return chunks_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunk_count_; }
  [[nodiscard]] std::size_t live_blocks() const { return live_blocks_; }

  /// Walks every carved block of @p chunk in address order.
  void walk_chunk(ChunkHeader* chunk,
                  const std::function<void(std::byte*, std::size_t, bool)>&
                      fn) const;  // (block, size, is_free)

  /// Consistency tripwire used by tests: verifies that carved blocks tile
  /// each chunk exactly and that free bookkeeping matches the index.
  void check_integrity() const;

  /// Checkpoint image of the pool: chunk-list roots and counters plus the
  /// free-index image.  Chunk pointers are capture-time addresses; restore
  /// relocates them and re-points every chunk's owner at *this* pool.
  struct Snapshot {
    ChunkHeader* chunks = nullptr;
    ChunkHeader* carve_chunk = nullptr;
    std::size_t chunk_count = 0;
    std::size_t live_blocks = 0;
    FreeIndex::Snapshot index;
  };

  [[nodiscard]] Snapshot save() const;

  /// Restores from @p snap over an already-restored arena slab, shifting
  /// every stored pointer by @p delta.  Any chunks this pool acquired
  /// before the restore are dropped without release — the arena's state
  /// was replaced wholesale, so they no longer exist as grants.
  void restore(const Snapshot& snap, std::ptrdiff_t delta);

 private:
  [[nodiscard]] std::byte* carve(std::size_t block_size);
  /// Splits @p block (size @p have) for a @p need -byte allocation; the
  /// remainder becomes a free block.  Returns the allocated part's size.
  std::size_t split_block(std::byte* block, std::size_t have,
                          std::size_t need, ChunkHeader* chunk);
  [[nodiscard]] std::size_t try_coalesce(std::byte*& block, std::size_t size,
                                         ChunkHeader* chunk);
  void make_free(std::byte* block, std::size_t size, ChunkHeader* chunk);
  void mark_allocated(std::byte* block, std::size_t size, ChunkHeader* chunk);
  void release_chunk_if_empty(ChunkHeader* chunk);
  void set_prev_free_of_next(std::byte* block, std::size_t size,
                             ChunkHeader* chunk, bool prev_free);
  [[nodiscard]] bool split_allowed(std::size_t have, std::size_t need) const;
  [[nodiscard]] bool remainder_ok(std::size_t remainder) const;

  HardKnobs hard_;   ///< consult-free structural knobs (see knobs.h)
  KnobView knobs_;   ///< soft knobs — every read notes its ConsultGroup
  BlockLayout layout_;
  std::size_t fixed_size_;
  std::size_t min_block_;
  PoolHost& host_;
  FreeIndex index_;
  ChunkHeader* chunks_ = nullptr;   ///< doubly-linked chunk list
  ChunkHeader* carve_chunk_ = nullptr;  ///< chunk currently bump-carved
  std::size_t chunk_count_ = 0;
  std::size_t live_blocks_ = 0;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_POOL_H
