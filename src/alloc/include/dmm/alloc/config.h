#ifndef DMM_ALLOC_CONFIG_H
#define DMM_ALLOC_CONFIG_H

#include <cstddef>
#include <string>

namespace dmm::alloc {

// ---------------------------------------------------------------------------
// The decision trees of the paper's search space (Fig. 1), one enum per tree.
// Leaves cited verbatim in the paper text are marked [paper]; the rest are
// reconstructed from Wilson et al. '95, which Fig. 1 is built from (see
// DESIGN.md, "Figure-1 reconstruction note").
// ---------------------------------------------------------------------------

/// Tree A1 — Block structure: the dynamic data type (DDT) that organises
/// free blocks inside a pool.
enum class BlockStructure {
  kSinglyLinkedList,   ///< one in-payload link
  kDoublyLinkedList,   ///< [paper: "double linked list"] O(1) arbitrary removal
  kSinglySortedBySize, ///< singly linked, kept sorted by block size
  kDoublySortedBySize, ///< doubly linked, kept sorted by block size
  kSizeBinaryTree,     ///< unbalanced BST keyed by size (Cartesian-tree style)
};

/// Tree A2 — Block sizes: is the set of block sizes in the system fixed
/// (requests rounded up to predetermined classes) or free-form?
enum class BlockSizes {
  kFixedClasses,  ///< predetermined size classes (Kingsley-style)
  kMany,          ///< [paper: "many block sizes"] sizes follow the requests
};

/// Tree A3 — Block tags: boundary fields physically present in each block.
enum class BlockTags {
  kNone,          ///< [paper: "none"] no per-block field at all
  kHeader,        ///< [paper: "header"] one word before the payload
  kFooter,        ///< one word after the payload
  kHeaderFooter,  ///< boundary tags on both ends (enables backward coalesce)
};

/// Tree A4 — Block recorded info: what the tag fields store.
enum class RecordedInfo {
  kNone,
  kSize,           ///< block size only
  kStatus,         ///< free/used bit only
  kSizeAndStatus,  ///< [paper: "size and status"]
};

/// Tree A5 — Flexible block size manager: which resizing mechanisms exist.
enum class FlexibleBlockSize {
  kNone,
  kSplitOnly,
  kCoalesceOnly,
  kSplitAndCoalesce,  ///< [paper: "split and coalesce"]
};

/// Tree B1 — Pool division based on size.
enum class PoolDivision {
  kSinglePool,        ///< [paper: "single pool"] all sizes share one pool
  kPoolPerSizeClass,  ///< one pool per logarithmic size class
  kPoolPerExactSize,  ///< one pool per distinct (rounded) request size
};

/// Tree B2 — Pool structure: DDT organising the pools themselves.
enum class PoolStructure {
  kArray,       ///< direct-indexed table of pools
  kLinkedList,  ///< pools chained, linear lookup
};

/// Tree B3 — Pool count policy.
enum class PoolCount {
  kOne,         ///< exactly one pool, ever
  kStaticMany,  ///< fixed roster of pools decided at design time
  kDynamic,     ///< pools created on demand as new sizes appear
};

/// Tree B4 — Pool memory adaptivity: the pool set's contract with the OS.
/// `kGrowAndShrink` is what lets a manager hand coalesced chunks back
/// ("returned back to the system for other applications", Sec. 5).
enum class PoolAdaptivity {
  kStaticPreallocated,  ///< one up-front grant, never grows or returns
  kGrowOnly,            ///< requests chunks on demand, never returns them
  kGrowAndShrink,       ///< also releases empty chunks back to the arena
};

/// Tree C1 — Fit algorithms for picking a free block.
enum class FitAlgorithm {
  kFirstFit,
  kNextFit,   ///< first fit resuming from the last allocation point
  kBestFit,
  kWorstFit,
  kExactFit,  ///< [paper: "exact fit"] exact size match, else smallest larger
};

/// Tree C2 — Free-list ordering discipline (position of freed blocks).
enum class FreeListOrder {
  kLIFO,
  kFIFO,
  kAddressOrdered,
  kSizeOrdered,
};

/// Tree D1 — Number of max block sizes allowed after coalescing.
enum class CoalesceSizes {
  kNotFixed,        ///< [paper: "many and not fixed"] any merged size allowed
  kBoundedByClass,  ///< merged size must stay within the class ceiling
};

/// Tree D2 — When coalescing runs.
enum class CoalesceWhen {
  kNever,     ///< [paper: "never"]
  kDeferred,  ///< only when an allocation would otherwise grow the pool
  kAlways,    ///< [paper: "always"] immediately on every deallocation
};

/// Tree E1 — Number of min block sizes allowed after splitting.
enum class SplitSizes {
  kNotFixed,        ///< [paper: "many and not fixed"] any remainder allowed
  kBoundedByClass,  ///< remainder rounded down to a size class (waste!)
};

/// Tree E2 — When splitting runs.
enum class SplitWhen {
  kNever,
  kDeferred,  ///< split only remainders above a pressure threshold
  kAlways,    ///< split whenever a viable remainder exists
};

// ---------------------------------------------------------------------------

/// One leaf per decision tree = one *atomic DM manager* (paper Sec. 3.1).
///
/// Any combination is expressible; `dmm::core::Constraints` decides which
/// combinations are coherent (Fig. 2 interdependencies).  The numeric
/// parameters below the enums are the implementation knobs the paper fixes
/// "via simulation" after the tree decisions (Sec. 5).
struct DmmConfig {
  // Category A — creating block structures
  BlockStructure block_structure = BlockStructure::kDoublyLinkedList;  // A1
  BlockSizes block_sizes = BlockSizes::kMany;                          // A2
  BlockTags block_tags = BlockTags::kHeaderFooter;                     // A3
  RecordedInfo recorded_info = RecordedInfo::kSizeAndStatus;           // A4
  FlexibleBlockSize flexible = FlexibleBlockSize::kSplitAndCoalesce;   // A5
  // Category B — pool division
  PoolDivision pool_division = PoolDivision::kSinglePool;              // B1
  PoolStructure pool_structure = PoolStructure::kArray;                // B2
  PoolCount pool_count = PoolCount::kOne;                              // B3
  PoolAdaptivity adaptivity = PoolAdaptivity::kGrowAndShrink;          // B4
  // Category C — allocating blocks
  FitAlgorithm fit = FitAlgorithm::kExactFit;                          // C1
  FreeListOrder order = FreeListOrder::kLIFO;                          // C2
  // Category D — coalescing blocks
  CoalesceSizes coalesce_sizes = CoalesceSizes::kNotFixed;             // D1
  CoalesceWhen coalesce_when = CoalesceWhen::kAlways;                  // D2
  // Category E — splitting blocks
  SplitSizes split_sizes = SplitSizes::kNotFixed;                      // E1
  SplitWhen split_when = SplitWhen::kAlways;                           // E2

  // ---- numeric knobs (fixed per manager after tree decisions) ----
  /// Chunk size requested from the arena when a pool grows.
  std::size_t chunk_bytes = 16 * 1024;
  /// Requests above this get a dedicated chunk released straight back on
  /// free (the custom managers' "large object" path).
  std::size_t big_request_bytes = 8 * 1024;
  /// Static preallocation size when adaptivity == kStaticPreallocated.
  std::size_t static_pool_bytes = 1 << 20;
  /// Deferred splitting: only split when the remainder is at least this.
  std::size_t deferred_split_min = 2048;
  /// Size-class ceiling exponent for kBoundedByClass (2^k bytes).
  unsigned max_class_log2 = 16;

  bool operator==(const DmmConfig&) const = default;
};

/// Canonical behavioural form of a decision vector: fields that the
/// synthesised manager provably never reads under the vector's gating
/// decisions are reset to a fixed representative, so two vectors that build
/// behaviourally identical managers compare (and hash) equal.
///
/// Dead *leaves* (the manager double-gates each mechanism on A5 and its
/// schedule, and self-ordering DDTs override C2 — see Pool/FreeIndex):
///
///   * splitting runs only when A5 grants it AND E2 != never; the pair is
///     normalised to its effective value (a granted-but-never mechanism
///     and a scheduled-but-absent one both collapse to "off")
///   * coalescing likewise (A5 x D2)
///   * split machinery off  -> split_sizes (E1) ignored
///   * coalesce machinery off -> coalesce_sizes (D1) ignored
///   * size-sorted DDTs (A1) impose their own discipline -> order (C2) dead
///   * pool division != per-size-class -> pool_count (B3) never read; it
///     collapses to the value the B1->B3 hard rules force (single pool ->
///     one, per-exact-size -> dynamic).  B2 stays live even for a single
///     pool: the linked-list lookup charges work the array lookup does not.
///
/// Dead numeric knobs:
///
///   * split machinery off  -> deferred_split_min dead
///   * neither side bounded by class -> max_class_log2 dead
///   * adaptivity != static -> static_pool_bytes dead
///   * adaptivity == static -> big_request_bytes dead (no dedicated path)
///
/// All other leaves are preserved — they are the design vector's identity.
/// The score caches key on this form: it is what makes the greedy walk's
/// repaired completions collide into cache hits, and what lets
/// Explorer::exhaustive enumerate the canonical quotient space instead of
/// the raw cartesian product.
[[nodiscard]] DmmConfig canonical(const DmmConfig& cfg);

/// FNV-1a over every field of the vector; agrees with operator==.
/// Canonicalize first when behavioural identity is wanted.
[[nodiscard]] std::size_t hash_value(const DmmConfig& cfg);

/// One FNV-1a mixing step, exposed so composite cache keys (e.g. trace
/// fingerprint x canonical config) hash consistently with this header's
/// family everywhere they are formed.
[[nodiscard]] std::size_t hash_combine(std::size_t seed, std::size_t value);

/// Hash functor for unordered containers keyed by DmmConfig.
struct DmmConfigHash {
  [[nodiscard]] std::size_t operator()(const DmmConfig& cfg) const {
    return hash_value(cfg);
  }
};

// --- printable names (implemented in config.cpp) ---
std::string to_string(BlockStructure v);
std::string to_string(BlockSizes v);
std::string to_string(BlockTags v);
std::string to_string(RecordedInfo v);
std::string to_string(FlexibleBlockSize v);
std::string to_string(PoolDivision v);
std::string to_string(PoolStructure v);
std::string to_string(PoolCount v);
std::string to_string(PoolAdaptivity v);
std::string to_string(FitAlgorithm v);
std::string to_string(FreeListOrder v);
std::string to_string(CoalesceSizes v);
std::string to_string(CoalesceWhen v);
std::string to_string(SplitSizes v);
std::string to_string(SplitWhen v);

/// Multi-line human-readable dump of a full decision vector.
std::string describe(const DmmConfig& cfg);

/// Compact single-line signature, e.g. "A1=dll A2=many ... E2=always".
std::string signature(const DmmConfig& cfg);

// --- presets used throughout tests/benches ---

/// The custom manager the paper derives for DRR (Sec. 5, decision walk).
DmmConfig drr_paper_config();

/// Minimal-capability valid vector: no tags, no split/coalesce, per-exact
/// pools, singly-linked first-fit.  The exploration engine uses it as the
/// value of *undecided* trees, so each decision is scored against only the
/// capabilities already committed (the paper's forward constraint
/// propagation; also what makes the Fig. 4 wrong-order trap reproducible).
DmmConfig minimal_config();

/// A deliberately crippled config from the Fig. 4 wrong-order example:
/// A3=none decided first, which forces D2/E2=never.
DmmConfig fig4_wrong_order_config();

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_CONFIG_H
