#ifndef DMM_ALLOC_ALLOCATOR_H
#define DMM_ALLOC_ALLOCATOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "dmm/sysmem/system_arena.h"

namespace dmm::alloc {

/// Opaque manager-state snapshot for the incremental-replay checkpoints.
/// Concrete managers that support save_state()/restore_state() derive their
/// own state type from this; everyone else returns nullptr and the replay
/// layer falls back to cold evaluation.
struct AllocatorState {
  virtual ~AllocatorState() = default;
};

/// Operation counters and live-data accounting common to every manager.
///
/// `live_bytes` counts *payload* bytes the application currently holds, so
///   fragmentation+overhead = arena.footprint() - live_bytes
/// splits exactly into the paper's two footprint factors (organization
/// overhead and fragmentation waste).
struct AllocatorStats {
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
  std::uint64_t failed_allocs = 0;
  std::size_t live_bytes = 0;    ///< payload bytes currently allocated
  std::size_t live_blocks = 0;   ///< blocks currently allocated
  std::size_t peak_live_bytes = 0;
  // Mechanism counters (exposed for the ablation benches).
  std::uint64_t splits = 0;
  std::uint64_t coalesces = 0;
  std::uint64_t chunks_grown = 0;
  std::uint64_t chunks_released = 0;
};

/// Abstract dynamic-memory manager.
///
/// Mirrors the C `malloc`/`free` contract the paper's applications use:
/// `deallocate` takes only the pointer; every manager must recover the
/// block size from its own metadata (tags, pool membership, ...).
///
/// All storage is drawn from the `SystemArena` passed at construction, so
/// `arena().peak_footprint()` is the paper's "maximum memory footprint"
/// for whatever ran on this manager.
class Allocator {
 public:
  explicit Allocator(sysmem::SystemArena& arena) : arena_(&arena) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates @p bytes of payload.  Returns nullptr on exhaustion (arena
  /// budget) — embedded code paths must be able to observe failure.
  [[nodiscard]] virtual void* allocate(std::size_t bytes) = 0;

  /// Releases a pointer previously returned by allocate().
  virtual void deallocate(void* ptr) = 0;

  /// Payload size reserved for @p ptr (>= requested size).  Used by tests
  /// to quantify internal fragmentation.
  [[nodiscard]] virtual std::size_t usable_size(const void* ptr) const = 0;

  /// Human-readable manager name as it appears in Table 1.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Logical-phase hint (Sec. 3.3): phase-aware managers (GlobalManager)
  /// switch their active atomic manager here; everyone else ignores it.
  virtual void set_phase(std::uint16_t /*phase*/) {}

  /// Deep-copies this manager's replay-relevant state (pool rosters, free
  /// lists, counters) for a simulation checkpoint.  Default: unsupported
  /// (nullptr) — only managers with fully deterministic, relocatable state
  /// opt in.  Must be paired with the owning arena's ArenaSnapshot taken
  /// at the same instant.
  [[nodiscard]] virtual std::unique_ptr<AllocatorState> save_state() const {
    return nullptr;
  }

  /// Restores state captured by save_state() on a *compatible* manager (one
  /// whose structure-defining knobs match; the checkpoint layer guarantees
  /// this via its prefix-invariance analysis).  The owning arena must
  /// already have been restored from the paired ArenaSnapshot.  Returns
  /// false if the snapshot is incompatible; the caller then replays cold.
  [[nodiscard]] virtual bool restore_state(const AllocatorState& /*state*/) {
    return false;
  }

  [[nodiscard]] const AllocatorStats& stats() const { return stats_; }
  [[nodiscard]] sysmem::SystemArena& arena() { return *arena_; }
  [[nodiscard]] const sysmem::SystemArena& arena() const { return *arena_; }

  /// Footprint minus live payload: organization overhead + fragmentation.
  [[nodiscard]] std::size_t waste() const {
    const std::size_t fp = arena_->footprint();
    return fp > stats_.live_bytes ? fp - stats_.live_bytes : 0;
  }

 protected:
  void note_alloc(std::size_t payload) {
    ++stats_.alloc_count;
    ++stats_.live_blocks;
    stats_.live_bytes += payload;
    if (stats_.live_bytes > stats_.peak_live_bytes) {
      stats_.peak_live_bytes = stats_.live_bytes;
    }
  }
  void note_free(std::size_t payload) {
    ++stats_.free_count;
    --stats_.live_blocks;
    stats_.live_bytes -= payload;
  }

  sysmem::SystemArena* arena_;
  AllocatorStats stats_;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_ALLOCATOR_H
