#ifndef DMM_ALLOC_FREE_INDEX_H
#define DMM_ALLOC_FREE_INDEX_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "dmm/alloc/block_layout.h"
#include "dmm/alloc/config.h"
#include "dmm/alloc/knobs.h"

namespace dmm::alloc {

/// Free-block structure of a pool: the runtime realisation of tree A1
/// (block structure DDT), honouring tree C2 (free-list ordering) and
/// serving tree C1 (fit algorithms).
///
/// All link words live *inside the payload of the free blocks themselves*
/// (in-band), so the index adds no per-block footprint beyond the minimum
/// free-block size — exactly how the paper's managers are built.
///
/// Block sizes come either from the block header (tree A4) or from the
/// pool's fixed block size when blocks carry no tags — the index reads
/// them directly through the layout, keeping the hot path call-free.
///
/// The soft C1/C2 knobs are read through the KnobView accessor layer (see
/// knobs.h), and only at genuine decision points: the ordering knob when a
/// block joins a non-empty index, the fit knob when at least two candidate
/// blocks coexist (one, for trees, whose policies already diverge on a
/// single node).  This is what keeps the checkpoint layer's consult table
/// sound without hand-placed hooks.
///
/// The index counts traversal steps (`scan_steps`) as an
/// architecture-neutral work measure used by the performance benches.
class FreeIndex {
 public:
  /// Config-driven mode, for pools executing a decision vector.
  /// @param ddt         tree A1 leaf (hard knob, fixed at construction)
  /// @param knobs       soft-knob view serving C1/C2 reads (must outlive
  ///                    the index; self-ordering DDTs override its C2)
  /// @param layout      block layout (header offset and size field)
  /// @param fixed_size  pool's fixed block size; 0 = read from headers
  FreeIndex(BlockStructure ddt, KnobView knobs, const BlockLayout& layout,
            std::size_t fixed_size);

  /// Pinned-policy mode, for fixed reference managers (Lea/Kingsley) and
  /// unit tests whose policies are compile-time constants rather than
  /// DmmConfig soft knobs: the ordering is given here, the fit per call
  /// through the explicit take_fit overload, and nothing consults.
  FreeIndex(BlockStructure ddt, FreeListOrder pinned_order,
            const BlockLayout& layout, std::size_t fixed_size);

  FreeIndex(const FreeIndex&) = delete;
  FreeIndex& operator=(const FreeIndex&) = delete;

  /// Bytes of in-payload link space the DDT needs per free block.
  [[nodiscard]] static std::size_t link_bytes(BlockStructure ddt);

  /// Threads @p block into the structure.
  void insert(std::byte* block);

  /// Unthreads @p block.  Aborts if the block is not present (tripwire).
  void remove(std::byte* block);

  /// Finds a block satisfying @p need bytes per the C1 fit knob, unthreads
  /// and returns it; nullptr if no free block fits.  Consults kFit iff the
  /// policy could matter (two coexisting blocks; one for trees).
  /// Config-driven mode only — aborts on a pinned-policy index.
  [[nodiscard]] std::byte* take_fit(std::size_t need);

  /// Explicit-policy take for pinned-policy indexes (and tests probing a
  /// specific fit).  Reads no knob and consults nothing.
  [[nodiscard]] std::byte* take_fit(std::size_t need, FitAlgorithm fit);

  /// Unthreads and returns any block (used when draining a pool).
  [[nodiscard]] std::byte* pop_any();

  /// Linear/structural membership test — O(n), for tests and tripwires.
  [[nodiscard]] bool contains(const std::byte* block) const;

  /// Visits every free block (unspecified order).
  void for_each(const std::function<void(std::byte*)>& fn) const;

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::uint64_t scan_steps() const { return scan_steps_; }

  [[nodiscard]] BlockStructure structure() const { return ddt_; }
  /// Effective C2 discipline: the config's ordering knob, overridden to
  /// size-ordered by self-ordering DDTs.  Reading it consults kOrder.
  [[nodiscard]] FreeListOrder order() const { return discipline(); }

  /// Checkpoint image of the index.  All pointers are raw block addresses
  /// inside the arena slab *at capture time*; restore() relocates every
  /// link word by the slab-base delta.  Structure knobs (ddt/order/layout/
  /// fixed_size) are NOT captured — they belong to the restoring index's
  /// own construction, which the checkpoint layer guarantees compatible.
  struct Snapshot {
    std::byte* head = nullptr;
    std::byte* tail = nullptr;
    std::byte* cursor = nullptr;
    std::byte* root = nullptr;
    std::size_t count = 0;
    std::size_t bytes = 0;
    std::uint64_t scan_steps = 0;
  };

  [[nodiscard]] Snapshot save() const;

  /// Restores roots/counters from @p snap (pointers shifted by @p delta)
  /// and walks the structure fixing every in-payload link word in place.
  /// The slab bytes must already have been restored by the arena.
  void restore(const Snapshot& snap, std::ptrdiff_t delta);

 private:
  // --- in-payload node overlays ---
  struct ListNode;  // next [, prev]
  struct TreeNode;  // left, right, parent

  [[nodiscard]] ListNode* list_node(std::byte* b) const;
  [[nodiscard]] TreeNode* tree_node(std::byte* b) const;
  [[nodiscard]] std::size_t size_of(const std::byte* b) const {
    return fixed_size_ != 0 ? fixed_size_ : layout_.read_size(b);
  }
  [[nodiscard]] bool doubly_linked() const;
  [[nodiscard]] bool sorted_by_size() const;
  [[nodiscard]] FreeListOrder discipline() const;

  // list primitives
  void list_push_front(std::byte* b);
  void list_push_back(std::byte* b);
  void list_insert_sorted(std::byte* b, bool by_size);
  void list_unlink(std::byte* b, std::byte* prev_hint);
  [[nodiscard]] std::byte* list_prev_of(std::byte* b) const;  // O(n) for SLL
  [[nodiscard]] std::byte* list_take(std::size_t need, FitAlgorithm fit);

  // tree primitives (BST keyed by (size, address))
  void tree_insert(std::byte* b);
  void tree_remove(std::byte* b);
  [[nodiscard]] std::byte* tree_take(std::size_t need, FitAlgorithm fit);
  [[nodiscard]] bool tree_key_less(const std::byte* a,
                                   const std::byte* b) const;

  BlockStructure ddt_;
  /// Engaged in config-driven mode; pinned-policy indexes use
  /// pinned_order_ and the explicit-fit overload instead.
  std::optional<KnobView> knobs_;
  FreeListOrder pinned_order_ = FreeListOrder::kLIFO;
  std::size_t link_offset_;
  BlockLayout layout_;
  std::size_t fixed_size_;

  std::byte* head_ = nullptr;
  std::byte* tail_ = nullptr;
  std::byte* cursor_ = nullptr;  ///< next-fit roving pointer
  std::byte* root_ = nullptr;    ///< BST root
  std::size_t count_ = 0;
  std::size_t bytes_ = 0;
  mutable std::uint64_t scan_steps_ = 0;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_FREE_INDEX_H
