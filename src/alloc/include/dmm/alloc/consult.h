#ifndef DMM_ALLOC_CONSULT_H
#define DMM_ALLOC_CONSULT_H

#include <cstdint>

namespace dmm::alloc {

/// Knob-consultation groups for the incremental-replay prefix analysis.
///
/// The checkpointed replay (core/checkpoint.h) needs to know, for a given
/// trace and baseline config, the first event at which each *group* of
/// decision-tree knobs could have changed the manager's behaviour.  A
/// candidate that differs from the baseline only in knobs whose groups were
/// never consulted before event N behaves bit-identically on the prefix
/// [0, N) and may resume from a checkpoint taken there.
///
/// Hooks fire at the decision *points* — before the config value gates the
/// outcome — so "first consult" is valid for any pair of configs sharing
/// the hard (structure-defining) knobs:
///
///   * kFit      — a fit policy chose among >= 1 candidate free blocks.
///   * kOrder    — a free block was filed into a non-empty index, where
///                 insertion position depends on the ordering policy.
///   * kSplit    — a reused free block was larger than the request, so the
///                 split policy decides whether to carve a remainder.
///   * kCoalesce — free-neighbour merging could run (alloc-side deferred
///                 retry or free-side immediate merge).
///   * kShrink   — an empty chunk could be returned to the system.
///
/// Soundness is structural, not conventional: allocator code never calls
/// `note_consult` by hand.  Soft knobs are read exclusively through
/// `KnobView` (dmm/alloc/knobs.h), whose accessors note their statically
/// assigned group before returning the value — reading a soft knob IS
/// consulting it.  Hard (structure-defining) knobs go through `HardKnobs`
/// and are consult-free, because the checkpoint layer never shares a
/// replay prefix across configs that differ in them (`hard_mismatch` in
/// core/checkpoint.cpp).  `tools/dmm_lint` rejects raw `DmmConfig` field
/// reads outside the accessor layer and a short whitelist, so an
/// unconsulted soft-knob read cannot merge.
struct ConsultSink;

enum class ConsultGroup : int {
  kFit = 0,
  kOrder,
  kSplit,
  kCoalesce,
  kShrink,
};

inline constexpr int kConsultGroups = 5;

/// Per-replay record of the first event index at which each group was
/// consulted.  `current_event` is advanced by the simulator; allocator
/// hooks call note().  UINT64_MAX = never consulted (teardown included,
/// because the simulator sets current_event = trace length before the
/// final deallocation sweep).
struct ConsultSink {
  std::uint64_t current_event = 0;
  std::uint64_t first_consult[kConsultGroups] = {
      UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX};

  void note(ConsultGroup g) {
    auto& slot = first_consult[static_cast<int>(g)];
    if (current_event < slot) slot = current_event;
  }
};

/// The active sink is thread-local: replays on distinct engine workers
/// instrument independently, and code outside a checkpointed replay pays
/// one TLS load + branch per hook.
inline ConsultSink*& consult_sink_slot() {
  thread_local ConsultSink* sink = nullptr;
  return sink;
}

inline void set_consult_sink(ConsultSink* sink) { consult_sink_slot() = sink; }

inline void note_consult(ConsultGroup g) {
  if (ConsultSink* s = consult_sink_slot()) s->note(g);
}

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_CONSULT_H
