#ifndef DMM_ALLOC_BLOCK_LAYOUT_H
#define DMM_ALLOC_BLOCK_LAYOUT_H

#include <cstddef>
#include <cstdint>

#include "dmm/alloc/config.h"
#include "dmm/alloc/knobs.h"
#include "dmm/alloc/size_class.h"

namespace dmm::alloc {

/// Physical layout of a memory block as dictated by trees A3 (block tags)
/// and A4 (block recorded info).
///
/// A *block* spans [base, base + block_size):
///
///   base                       base+header_bytes              base+size
///    | header (0 or 8 bytes)    | payload ...        [footer] |
///
/// * The header word packs the block size (multiple of 8, so the low three
///   bits are free) with a status bit (bit 0), subject to what A4 records.
/// * The footer is the boundary tag enabling backward coalescing.  It is
///   only *written* while the block is free and lives in the last word of
///   the block, overlapping payload space of live blocks (the dlmalloc
///   boundary-tag optimisation) — so footers cost nothing on live blocks
///   and only raise the minimum viable free-block size.
/// * Free-list links (tree A1) also live in the payload of free blocks.
///
/// When A3 = none there is no in-band field at all; the owning pool must be
/// able to infer size and status some other way (fixed-size pool), which is
/// exactly the Fig. 3 interdependency.
class BlockLayout {
 public:
  static constexpr std::size_t kWord = sizeof(std::size_t);
  static constexpr std::size_t kStatusBit = 1;    ///< this block is free
  static constexpr std::size_t kPrevFreeBit = 2;  ///< preceding block is free
  static constexpr std::size_t kFlagMask = kStatusBit | kPrevFreeBit;

  BlockLayout() = default;

  /// Derives the layout from the A3/A4 decisions of @p cfg (hard knobs:
  /// they shape construction, so reading them is consult-free).
  static BlockLayout from(const DmmConfig& cfg) {
    const HardKnobs hard(cfg);
    const BlockTags tags = hard.block_tags();
    const RecordedInfo info = hard.recorded_info();
    BlockLayout l;
    l.has_header_ =
        tags == BlockTags::kHeader || tags == BlockTags::kHeaderFooter;
    l.has_footer_ =
        tags == BlockTags::kFooter || tags == BlockTags::kHeaderFooter;
    l.records_size_ = info == RecordedInfo::kSize ||
                      info == RecordedInfo::kSizeAndStatus;
    l.records_status_ = info == RecordedInfo::kStatus ||
                        info == RecordedInfo::kSizeAndStatus;
    if (tags == BlockTags::kNone) {
      l.records_size_ = l.records_status_ = false;
    }
    return l;
  }

  [[nodiscard]] std::size_t header_bytes() const {
    return has_header_ ? kWord : 0;
  }
  /// Footer space reserved *inside free blocks only* (see class comment).
  [[nodiscard]] std::size_t footer_bytes() const {
    return has_footer_ ? kWord : 0;
  }
  [[nodiscard]] bool has_header() const { return has_header_; }
  [[nodiscard]] bool has_footer() const { return has_footer_; }
  [[nodiscard]] bool records_size() const { return records_size_ && has_header_; }
  [[nodiscard]] bool records_status() const {
    return records_status_ && has_header_;
  }

  /// Smallest block size (header + payload) that can later be threaded
  /// into a free structure needing @p link_bytes of in-payload links.
  [[nodiscard]] std::size_t min_block_size(std::size_t link_bytes) const {
    const std::size_t payload =
        align_up(link_bytes > kAlignment ? link_bytes : kAlignment) +
        footer_bytes();
    return align_up(header_bytes() + payload);
  }

  // ---- field access (all take the block base pointer) ----

  /// Writes the header word for a block of @p block_size with free/used
  /// status @p free and prev-block status @p prev_free (the dlmalloc-style
  /// bit that makes backward coalescing safe without reading into the
  /// predecessor's payload).  No-op when the layout has no header.
  void write_header(std::byte* block, std::size_t block_size, bool free,
                    bool prev_free = false) const {
    if (!has_header_) return;
    std::size_t word = records_size_ ? block_size : 0;
    if (records_status_) {
      if (free) word |= kStatusBit;
      if (prev_free) word |= kPrevFreeBit;
    }
    *reinterpret_cast<std::size_t*>(block) = word;
  }

  /// Block size recorded in the header (0 if the layout records none).
  [[nodiscard]] std::size_t read_size(const std::byte* block) const {
    if (!records_size()) return 0;
    return *reinterpret_cast<const std::size_t*>(block) & ~kFlagMask;
  }

  /// Free/used status from the header (false if not recorded).
  [[nodiscard]] bool read_free(const std::byte* block) const {
    if (!records_status()) return false;
    return (*reinterpret_cast<const std::size_t*>(block) & kStatusBit) != 0;
  }

  /// Prev-block free status from the header (false if not recorded).
  [[nodiscard]] bool read_prev_free(const std::byte* block) const {
    if (!records_status()) return false;
    return (*reinterpret_cast<const std::size_t*>(block) & kPrevFreeBit) != 0;
  }

  /// Updates only the prev-free bit of an existing header.
  void set_prev_free(std::byte* block, bool prev_free) const {
    if (!records_status()) return;
    auto* word = reinterpret_cast<std::size_t*>(block);
    *word = prev_free ? (*word | kPrevFreeBit) : (*word & ~kPrevFreeBit);
  }

  /// Writes the boundary footer (size copy) into the last word of a *free*
  /// block.  No-op when the layout has no footer.
  void write_footer(std::byte* block, std::size_t block_size) const {
    if (!has_footer_) return;
    *reinterpret_cast<std::size_t*>(block + block_size - kWord) = block_size;
  }

  /// Size of the free block that ends exactly at @p boundary (i.e. whose
  /// footer occupies [boundary-8, boundary)).  Only meaningful when the
  /// caller already knows the predecessor is free.
  [[nodiscard]] std::size_t read_footer_size(const std::byte* boundary) const {
    if (!has_footer_) return 0;
    return *reinterpret_cast<const std::size_t*>(boundary - kWord);
  }

  [[nodiscard]] std::byte* payload(std::byte* block) const {
    return block + header_bytes();
  }
  [[nodiscard]] const std::byte* payload(const std::byte* block) const {
    return block + header_bytes();
  }
  [[nodiscard]] std::byte* block_of(void* payload_ptr) const {
    return static_cast<std::byte*>(payload_ptr) - header_bytes();
  }
  [[nodiscard]] const std::byte* block_of(const void* payload_ptr) const {
    return static_cast<const std::byte*>(payload_ptr) - header_bytes();
  }

  /// Payload bytes available to the application in a *live* block of
  /// @p block_size (footer overlaps payload on live blocks).
  [[nodiscard]] std::size_t live_payload(std::size_t block_size) const {
    return block_size - header_bytes();
  }

  /// Total block size needed to serve a payload request of @p payload,
  /// also viable as a future free block with @p link_bytes links.
  [[nodiscard]] std::size_t block_size_for(std::size_t payload,
                                           std::size_t link_bytes) const {
    const std::size_t sz = align_up(header_bytes() + align_up(payload));
    const std::size_t min_sz = min_block_size(link_bytes);
    return sz < min_sz ? min_sz : sz;
  }

 private:
  bool has_header_ = false;
  bool has_footer_ = false;
  bool records_size_ = false;
  bool records_status_ = false;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_BLOCK_LAYOUT_H
