#ifndef DMM_ALLOC_SIZE_CLASS_H
#define DMM_ALLOC_SIZE_CLASS_H

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dmm::alloc {

/// Allocation alignment for every manager in the library.  8 bytes is the
/// natural word size of the modelled 32/64-bit embedded targets and keeps
/// the per-block tag fields (one word) aligned.
inline constexpr std::size_t kAlignment = 8;

/// Rounds @p n up to the next multiple of @p align (power of two).
[[nodiscard]] constexpr std::size_t align_up(std::size_t n,
                                             std::size_t align = kAlignment) {
  return (n + align - 1) & ~(align - 1);
}

/// True iff @p p is aligned to @p align.
[[nodiscard]] inline bool is_aligned(const void* p,
                                     std::size_t align = kAlignment) {
  // dmm-lint: allow(ptr-order): alignment predicate, not an ordering
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/// Power-of-two size classes, the classic Kingsley binning.
/// Class k holds sizes in (2^(k-1), 2^k]; the smallest class is 2^kMinLog2.
struct SizeClass {
  static constexpr unsigned kMinLog2 = 3;   ///< 8 bytes
  static constexpr unsigned kMaxLog2 = 26;  ///< 64 MiB, beyond any workload
  static constexpr unsigned kCount = kMaxLog2 - kMinLog2 + 1;

  /// Smallest power of two >= n (n > 0).
  [[nodiscard]] static constexpr std::size_t round_up_pow2(std::size_t n) {
    return std::bit_ceil(n);
  }

  /// Index of the class that holds @p n bytes.
  [[nodiscard]] static constexpr unsigned index_for(std::size_t n) {
    if (n <= (std::size_t{1} << kMinLog2)) return 0;
    return static_cast<unsigned>(std::bit_width(n - 1)) - kMinLog2;
  }

  /// Byte size of class @p idx.
  [[nodiscard]] static constexpr std::size_t size_of(unsigned idx) {
    return std::size_t{1} << (idx + kMinLog2);
  }

  /// Rounds @p n up to its class size (Kingsley rounding).
  [[nodiscard]] static constexpr std::size_t round_to_class(std::size_t n) {
    return size_of(index_for(n));
  }
};

static_assert(SizeClass::index_for(1) == 0);
static_assert(SizeClass::index_for(8) == 0);
static_assert(SizeClass::index_for(9) == 1);
static_assert(SizeClass::index_for(16) == 1);
static_assert(SizeClass::index_for(17) == 2);
static_assert(SizeClass::size_of(0) == 8);
static_assert(SizeClass::round_to_class(100) == 128);

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_SIZE_CLASS_H
