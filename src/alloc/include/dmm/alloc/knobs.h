#ifndef DMM_ALLOC_KNOBS_H
#define DMM_ALLOC_KNOBS_H

#include <cstddef>

#include "dmm/alloc/config.h"
#include "dmm/alloc/consult.h"

namespace dmm::alloc {

// ---------------------------------------------------------------------------
// Typed knob accessors: the consult-soundness layer.
//
// The incremental replay (core/checkpoint.h) is sound only if every runtime
// read of a *soft* decision knob on an allocator decision path is paired
// with a `note_consult()` of that knob's ConsultGroup.  Before this layer
// that pairing was a convention enforced by review: eight hand-placed hooks
// against dozens of raw `cfg_.` field reads.  Now it is structural:
//
//   * `KnobView` is the ONLY sanctioned way to read a soft knob inside the
//     allocator (`custom_manager.cpp` / `pool.cpp` / `free_index.cpp`).
//     Every accessor notes its statically-assigned ConsultGroup before
//     returning the value, so a read without a consult cannot be written.
//     Callers in turn must only read at genuine decision points — i.e.
//     places where the value could change observable behaviour — which the
//     refactored call sites guarantee by gating the *read itself* (e.g. the
//     ordering knob is read only when a second block joins a free index).
//
//   * `HardKnobs` exposes the structure-defining knobs that the checkpoint
//     layer treats as hard (any difference invalidates the whole prefix —
//     see `hard_mismatch` in core/checkpoint.cpp) plus the trace-pure
//     big-request threshold.  Reads through it do not consult: candidates
//     differing in a hard knob never share a prefix in the first place.
//
// `tools/dmm_lint` closes the loop: raw `DmmConfig` field reads outside
// this header and a short whitelist (canonical/hash/validation code) are
// lint errors, so a new knob read must come through one of these views.
// ---------------------------------------------------------------------------

/// Read-only view of the hard (structure-defining) knobs of a decision
/// vector.  These shape construction, layout, routing or sizing globally;
/// the checkpoint layer never shares a replay prefix across configs that
/// differ in any of them, so reading them is consult-free.
///
/// The view holds a pointer: it must not outlive the config it wraps.
class HardKnobs {
 public:
  explicit HardKnobs(const DmmConfig& cfg) : cfg_(&cfg) {}

  // Category A structure (trees A1-A4).
  [[nodiscard]] BlockStructure block_structure() const {
    return cfg_->block_structure;
  }
  [[nodiscard]] BlockSizes block_sizes() const { return cfg_->block_sizes; }
  [[nodiscard]] BlockTags block_tags() const { return cfg_->block_tags; }
  [[nodiscard]] RecordedInfo recorded_info() const {
    return cfg_->recorded_info;
  }

  // Category B pool organisation (trees B1-B3).
  [[nodiscard]] PoolDivision pool_division() const {
    return cfg_->pool_division;
  }
  [[nodiscard]] PoolStructure pool_structure() const {
    return cfg_->pool_structure;
  }
  [[nodiscard]] PoolCount pool_count() const { return cfg_->pool_count; }

  /// B4 = static preallocation changes the constructor itself (the
  /// up-front grant), so crossing into or out of it is a hard difference;
  /// the grow vs grow-and-shrink distinction stays soft (kShrink group,
  /// see KnobView::releases_empty_chunks).
  [[nodiscard]] bool static_preallocated() const {
    return cfg_->adaptivity == PoolAdaptivity::kStaticPreallocated;
  }

  // Numeric sizing knobs.
  [[nodiscard]] std::size_t chunk_bytes() const { return cfg_->chunk_bytes; }
  [[nodiscard]] std::size_t static_pool_bytes() const {
    return cfg_->static_pool_bytes;
  }
  [[nodiscard]] unsigned max_class_log2() const {
    return cfg_->max_class_log2;
  }
  /// Trace-pure: a threshold move only matters for request sizes landing
  /// between the two values, which the checkpoint planner bounds from the
  /// trace itself (first_alloc_of_size) — no runtime consult needed.
  [[nodiscard]] std::size_t big_request_bytes() const {
    return cfg_->big_request_bytes;
  }

 private:
  const DmmConfig* cfg_;
};

/// Read-only view of the soft decision knobs.  Every accessor notes its
/// ConsultGroup on the active ConsultSink (a no-op outside instrumented
/// replays) *before* returning the value: reading a soft knob IS consulting
/// it.  Call sites must therefore read only at genuine decision points —
/// the group-per-accessor mapping below mirrors `divergence_event` in
/// core/checkpoint.cpp exactly.
///
///   kFit      — fit()
///   kOrder    — order()
///   kSplit    — splitting_granted(), split_when(), split_sizes(),
///               deferred_split_min()
///   kCoalesce — coalescing_granted(), coalesce_when(), coalesce_sizes()
///   kShrink   — releases_empty_chunks()
///
/// A5 (flexible) gates both mechanisms, so it has no raw accessor: the two
/// derived predicates each note the group of the decision they serve, which
/// is why `divergence_event` lowers an A5 move to min(kSplit, kCoalesce).
///
/// The view holds a pointer: it must not outlive the config it wraps.
class KnobView {
 public:
  explicit KnobView(const DmmConfig& cfg) : cfg_(&cfg) {}

  /// C1 — which free block to take when candidates could differ.
  [[nodiscard]] FitAlgorithm fit() const {
    note_consult(ConsultGroup::kFit);
    return cfg_->fit;
  }

  /// C2 — where a freed block is filed in a non-empty index.
  [[nodiscard]] FreeListOrder order() const {
    note_consult(ConsultGroup::kOrder);
    return cfg_->order;
  }

  /// A5, split side — does the vector grant the splitting mechanism?
  [[nodiscard]] bool splitting_granted() const {
    note_consult(ConsultGroup::kSplit);
    return cfg_->flexible == FlexibleBlockSize::kSplitOnly ||
           cfg_->flexible == FlexibleBlockSize::kSplitAndCoalesce;
  }
  /// E2 — when splitting runs.
  [[nodiscard]] SplitWhen split_when() const {
    note_consult(ConsultGroup::kSplit);
    return cfg_->split_when;
  }
  /// E1 — which remainder sizes a split may produce.
  [[nodiscard]] SplitSizes split_sizes() const {
    note_consult(ConsultGroup::kSplit);
    return cfg_->split_sizes;
  }
  /// Deferred-splitting pressure threshold (fixed "via simulation", Sec. 5).
  [[nodiscard]] std::size_t deferred_split_min() const {
    note_consult(ConsultGroup::kSplit);
    return cfg_->deferred_split_min;
  }

  /// A5, coalesce side — does the vector grant the coalescing mechanism?
  [[nodiscard]] bool coalescing_granted() const {
    note_consult(ConsultGroup::kCoalesce);
    return cfg_->flexible == FlexibleBlockSize::kCoalesceOnly ||
           cfg_->flexible == FlexibleBlockSize::kSplitAndCoalesce;
  }
  /// D2 — when coalescing runs.
  [[nodiscard]] CoalesceWhen coalesce_when() const {
    note_consult(ConsultGroup::kCoalesce);
    return cfg_->coalesce_when;
  }
  /// D1 — which merged sizes coalescing may produce.
  [[nodiscard]] CoalesceSizes coalesce_sizes() const {
    note_consult(ConsultGroup::kCoalesce);
    return cfg_->coalesce_sizes;
  }

  /// B4, shrink side — is an empty chunk returned to the arena (vs kept)?
  /// Only the grow-only / grow-and-shrink distinction is soft; the static
  /// case is hard (HardKnobs::static_preallocated) and never reaches a
  /// shrink decision because a static pool cannot grow or release.
  [[nodiscard]] bool releases_empty_chunks() const {
    note_consult(ConsultGroup::kShrink);
    return cfg_->adaptivity == PoolAdaptivity::kGrowAndShrink;
  }

 private:
  const DmmConfig* cfg_;
};

}  // namespace dmm::alloc

#endif  // DMM_ALLOC_KNOBS_H
