#include "dmm/managers/obstack.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dmm/alloc/size_class.h"

namespace dmm::managers {

using alloc::ChunkHeader;

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::managers::Obstack fatal: %s\n", what);
  std::abort();
}
}  // namespace

ObstackAllocator::ObstackAllocator(sysmem::SystemArena& arena,
                                   std::size_t chunk_bytes)
    : Allocator(arena), chunk_bytes_(chunk_bytes) {}

ObstackAllocator::~ObstackAllocator() {
  ChunkHeader* c = chunks_;
  while (c != nullptr) {
    ChunkHeader* next = c->next;
    arena_->release(c->base());
    c = next;
  }
}

void* ObstackAllocator::allocate(std::size_t bytes) {
  const std::size_t request = bytes == 0 ? 1 : bytes;
  const std::size_t object_size = alloc::align_up(kHeader + request);
  ChunkHeader* chunk = chunks_;
  if (chunk == nullptr || chunk->wilderness_bytes() < object_size) {
    // Real obstacks move the growing object to a fresh chunk and abandon
    // the old tail; the tail stays wasted until its chunk dies.
    std::size_t total = sizeof(ChunkHeader) + object_size;
    if (total < chunk_bytes_) total = chunk_bytes_;
    std::size_t granted = 0;
    std::byte* base = arena_->request(total, &granted);
    if (base == nullptr) {
      ++stats_.failed_allocs;
      return nullptr;
    }
    chunk = reinterpret_cast<ChunkHeader*>(base);
    chunk->init(granted, nullptr);
    chunk->next = chunks_;
    if (chunks_ != nullptr) chunks_->prev = chunk;
    chunks_ = chunk;
    chunk_index_.add(chunk);
    ++stats_.chunks_grown;
  }
  std::byte* obj = chunk->wilderness();
  chunk->bump += object_size;
  ++chunk->live_blocks;
  *reinterpret_cast<std::size_t*>(obj) = object_size;  // alive: dead bit 0
  note_alloc(object_size - kHeader);
  return obj + kHeader;
}

void ObstackAllocator::pop_dead_tail(ChunkHeader* chunk) {
  // Objects tile [data, bump); retreat the bump over the trailing run of
  // tombstoned objects (single walk, then one retreat).
  std::vector<std::pair<std::byte*, std::size_t>> objects;
  std::byte* pos = chunk->data();
  while (pos < chunk->wilderness()) {
    const std::size_t word = header_of(pos);
    const std::size_t size = word & ~kDeadBit;
    if (size == 0 || pos + size > chunk->wilderness()) {
      die("pop_dead_tail: corrupt object grid");
    }
    objects.emplace_back(pos, word);
    pos += size;
  }
  while (!objects.empty() && (objects.back().second & kDeadBit) != 0) {
    const std::size_t size = objects.back().second & ~kDeadBit;
    chunk->bump -= size;
    tombstone_bytes_ -= size;
    objects.pop_back();
  }
}

void ObstackAllocator::release_if_empty(ChunkHeader* chunk) {
  if (chunk->bump != sizeof(ChunkHeader)) return;
  if (chunk->prev != nullptr) chunk->prev->next = chunk->next;
  if (chunk->next != nullptr) chunk->next->prev = chunk->prev;
  if (chunks_ == chunk) chunks_ = chunk->next;
  chunk_index_.remove(chunk);
  arena_->release(chunk->base());
  ++stats_.chunks_released;
}

void ObstackAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  ChunkHeader* chunk = chunk_index_.find(ptr);
  if (chunk == nullptr) die("deallocate: pointer not owned by this manager");
  std::byte* obj = static_cast<std::byte*>(ptr) - kHeader;
  std::size_t& word = *reinterpret_cast<std::size_t*>(obj);
  if ((word & kDeadBit) != 0) die("deallocate: double free");
  const std::size_t size = word & ~kDeadBit;
  word |= kDeadBit;
  tombstone_bytes_ += size;
  --chunk->live_blocks;
  note_free(size - kHeader);
  pop_dead_tail(chunk);
  release_if_empty(chunk);
}

std::size_t ObstackAllocator::usable_size(const void* ptr) const {
  const std::byte* obj = static_cast<const std::byte*>(ptr) - kHeader;
  return (header_of(obj) & ~kDeadBit) - kHeader;
}

}  // namespace dmm::managers
