#include "dmm/managers/registry.h"

#include <cstdio>
#include <cstdlib>

#include "dmm/alloc/custom_manager.h"
#include "dmm/managers/kingsley.h"
#include "dmm/managers/lea.h"
#include "dmm/managers/obstack.h"
#include "dmm/managers/region.h"

namespace dmm::managers {

std::unique_ptr<alloc::Allocator> make_manager(
    const std::string& name, sysmem::SystemArena& arena,
    const alloc::DmmConfig* custom_config) {
  if (name == "kingsley") return std::make_unique<KingsleyAllocator>(arena);
  if (name == "lea") return std::make_unique<LeaAllocator>(arena);
  if (name == "regions") return std::make_unique<RegionAllocator>(arena);
  if (name == "obstacks") return std::make_unique<ObstackAllocator>(arena);
  if (name == "custom") {
    if (custom_config == nullptr) {
      std::fprintf(stderr, "make_manager: 'custom' needs a decision vector\n");
      std::abort();
    }
    return std::make_unique<alloc::CustomManager>(arena, *custom_config);
  }
  std::fprintf(stderr, "make_manager: unknown manager '%s'\n", name.c_str());
  std::abort();
}

const std::vector<std::string>& baseline_names() {
  static const std::vector<std::string> kNames = {"kingsley", "lea",
                                                  "regions", "obstacks"};
  return kNames;
}

}  // namespace dmm::managers
