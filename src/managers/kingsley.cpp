#include "dmm/managers/kingsley.h"

#include <cstdio>
#include <cstdlib>

namespace dmm::managers {

using alloc::ChunkHeader;
using alloc::SizeClass;

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::managers::Kingsley fatal: %s\n", what);
  std::abort();
}
}  // namespace

KingsleyAllocator::KingsleyAllocator(sysmem::SystemArena& arena,
                                     std::size_t chunk_bytes,
                                     std::size_t initial_reserve_bytes)
    : Allocator(arena), chunk_bytes_(chunk_bytes) {
  if (initial_reserve_bytes == 0) return;
  // Initial reserve: one grant pre-carved into blocks spread equally over
  // the small classes (16 B .. 4 KiB), per the paper's description.
  std::size_t granted = 0;
  std::byte* base =
      arena_->request(sizeof(ChunkHeader) + initial_reserve_bytes, &granted);
  if (base == nullptr) return;  // tiny arena budget: skip the reserve
  auto* chunk = reinterpret_cast<ChunkHeader*>(base);
  chunk->init(granted, nullptr);
  chunk->next = chunks_;
  chunks_ = chunk;
  ++stats_.chunks_grown;
  constexpr unsigned kFirst = 1;  // class 16 B (index 1 = 2^4)
  constexpr unsigned kLast = 9;   // class 4 KiB (index 9 = 2^12)
  const std::size_t share = chunk->data_bytes() / (kLast - kFirst + 1);
  for (unsigned idx = kFirst; idx <= kLast; ++idx) {
    const std::size_t block_size = SizeClass::size_of(idx);
    for (std::size_t n = 0; n < share / block_size; ++n) {
      if (chunk->wilderness_bytes() < block_size) break;
      std::byte* block = chunk->wilderness();
      chunk->bump += block_size;
      *reinterpret_cast<std::size_t*>(block) = block_size;
      auto* node = reinterpret_cast<FreeNode*>(block + kHeader);
      node->next = bins_[idx];
      bins_[idx] = node;
      ++bin_counts_[idx];
    }
  }
}

KingsleyAllocator::~KingsleyAllocator() {
  ChunkHeader* c = chunks_;
  while (c != nullptr) {
    ChunkHeader* next = c->next;
    arena_->release(c->base());
    c = next;
  }
}

std::byte* KingsleyAllocator::carve(std::size_t block_size) {
  if (carve_chunk_ == nullptr ||
      carve_chunk_->wilderness_bytes() < block_size) {
    // Kingsley never reuses old chunk tails for new classes; the remnant
    // simply stays unused (part of its footprint story).  We scan anyway
    // only when the current chunk cannot serve — the classic behaviour of
    // grabbing fresh core.
    std::size_t total = sizeof(ChunkHeader) + block_size;
    if (total < chunk_bytes_) total = chunk_bytes_;
    std::size_t granted = 0;
    std::byte* base = arena_->request(total, &granted);
    if (base == nullptr) return nullptr;
    auto* chunk = reinterpret_cast<ChunkHeader*>(base);
    chunk->init(granted, nullptr);
    chunk->next = chunks_;
    chunks_ = chunk;
    carve_chunk_ = chunk;
    ++stats_.chunks_grown;
  }
  std::byte* block = carve_chunk_->wilderness();
  carve_chunk_->bump += block_size;
  ++carve_chunk_->live_blocks;
  return block;
}

void* KingsleyAllocator::allocate(std::size_t bytes) {
  const std::size_t request = bytes == 0 ? 1 : bytes;
  // Round payload+header up to a power of two: the block IS the class size.
  const std::size_t block_size = SizeClass::round_up_pow2(request + kHeader);
  const unsigned idx = SizeClass::index_for(block_size);
  std::byte* block = nullptr;
  if (bins_[idx] != nullptr) {
    FreeNode* node = bins_[idx];
    bins_[idx] = node->next;
    --bin_counts_[idx];
    block = reinterpret_cast<std::byte*>(node) - kHeader;
  } else {
    block = carve(SizeClass::size_of(idx));
    if (block == nullptr) {
      ++stats_.failed_allocs;
      return nullptr;
    }
  }
  *reinterpret_cast<std::size_t*>(block) = SizeClass::size_of(idx);
  // Live bytes are tracked at block-capacity granularity (symmetric with
  // deallocate, which cannot recover the original request size).
  note_alloc(SizeClass::size_of(idx) - kHeader);
  (void)request;
  return block + kHeader;
}

void KingsleyAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::byte* block = static_cast<std::byte*>(ptr) - kHeader;
  const std::size_t block_size = *reinterpret_cast<std::size_t*>(block);
  if (block_size == 0 || (block_size & (block_size - 1)) != 0) {
    die("deallocate: corrupt class header");
  }
  const unsigned idx = SizeClass::index_for(block_size);
  auto* node = reinterpret_cast<FreeNode*>(ptr);
  node->next = bins_[idx];
  bins_[idx] = node;
  ++bin_counts_[idx];
  // note_free with the block's payload capacity: Kingsley cannot know the
  // original request size (no strict registry) — tests use usable_size.
  note_free(block_size - kHeader);
}

std::size_t KingsleyAllocator::usable_size(const void* ptr) const {
  const std::byte* block = static_cast<const std::byte*>(ptr) - kHeader;
  return *reinterpret_cast<const std::size_t*>(block) - kHeader;
}

std::size_t KingsleyAllocator::free_blocks_in_class(unsigned idx) const {
  return bin_counts_.at(idx);
}

}  // namespace dmm::managers
