#include "dmm/managers/lea.h"

#include <cstdio>
#include <cstdlib>

#include "dmm/alloc/size_class.h"

namespace dmm::managers {

using alloc::BlockLayout;
using alloc::ChunkHeader;
using alloc::FreeIndex;

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::managers::Lea fatal: %s\n", what);
  std::abort();
}

// Non-null marker distinguishing heap chunks from dedicated (mmap-like)
// chunks, which use owner == nullptr as in the rest of the library.
alloc::Pool* heap_tag() { return reinterpret_cast<alloc::Pool*>(1); }

alloc::DmmConfig lea_layout_config() {
  alloc::DmmConfig c;
  c.block_tags = alloc::BlockTags::kHeaderFooter;
  c.recorded_info = alloc::RecordedInfo::kSizeAndStatus;
  return c;
}
}  // namespace

LeaAllocator::LeaAllocator(sysmem::SystemArena& arena,
                           std::size_t chunk_bytes,
                           std::size_t mmap_threshold)
    : Allocator(arena),
      chunk_bytes_(chunk_bytes),
      mmap_threshold_(mmap_threshold),
      layout_(BlockLayout::from(lea_layout_config())) {
  for (auto& bin : small_bins_) {
    bin = std::make_unique<FreeIndex>(alloc::BlockStructure::kDoublyLinkedList,
                                      alloc::FreeListOrder::kLIFO, layout_,
                                      /*fixed_size=*/0);
  }
  large_bin_ = std::make_unique<FreeIndex>(
      alloc::BlockStructure::kDoublySortedBySize,
      alloc::FreeListOrder::kSizeOrdered, layout_, /*fixed_size=*/0);
}

LeaAllocator::~LeaAllocator() {
  ChunkHeader* c = chunks_;
  while (c != nullptr) {
    ChunkHeader* next = c->next;
    arena_->release(c->base());
    c = next;
  }
}

std::size_t LeaAllocator::block_size_for(std::size_t payload) const {
  const std::size_t sz =
      alloc::align_up(layout_.header_bytes() + alloc::align_up(payload));
  return sz < kMinBlock ? kMinBlock : sz;
}

std::byte* LeaAllocator::take_from_bins(std::size_t block_size) {
  const int bin = small_bin_for(block_size);
  if (bin >= 0) {
    // Exact small bin first, then increasingly larger small bins.
    for (std::size_t i = static_cast<std::size_t>(bin); i < kSmallBins; ++i) {
      if (!small_bins_[i]->empty()) {
        return small_bins_[i]->take_fit(block_size,
                                        alloc::FitAlgorithm::kFirstFit);
      }
    }
  }
  return large_bin_->take_fit(block_size, alloc::FitAlgorithm::kBestFit);
}

void LeaAllocator::put_in_bin(std::byte* block, std::size_t size) {
  layout_.write_header(block, size, /*free=*/true, /*prev_free=*/false);
  layout_.write_footer(block, size);
  const int bin = small_bin_for(size);
  if (bin >= 0) {
    small_bins_[static_cast<std::size_t>(bin)]->insert(block);
  } else {
    large_bin_->insert(block);
  }
}

void LeaAllocator::unbin(std::byte* block, std::size_t size) {
  const int bin = small_bin_for(size);
  if (bin >= 0) {
    small_bins_[static_cast<std::size_t>(bin)]->remove(block);
  } else {
    large_bin_->remove(block);
  }
}

std::byte* LeaAllocator::carve(std::size_t block_size) {
  if (carve_chunk_ == nullptr ||
      carve_chunk_->wilderness_bytes() < block_size) {
    carve_chunk_ = nullptr;
    for (ChunkHeader* c = chunks_; c != nullptr; c = c->next) {
      if (c->owner == heap_tag() && c->wilderness_bytes() >= block_size) {
        carve_chunk_ = c;
        break;
      }
    }
  }
  if (carve_chunk_ == nullptr) {
    std::size_t total = sizeof(ChunkHeader) + block_size;
    if (total < chunk_bytes_) total = chunk_bytes_;
    std::size_t granted = 0;
    std::byte* base = arena_->request(total, &granted);
    if (base == nullptr) return nullptr;
    auto* chunk = reinterpret_cast<ChunkHeader*>(base);
    chunk->init(granted, heap_tag());
    chunk->next = chunks_;
    chunk->prev = nullptr;
    if (chunks_ != nullptr) chunks_->prev = chunk;
    chunks_ = chunk;
    chunk_index_.add(chunk);
    carve_chunk_ = chunk;
    ++stats_.chunks_grown;
  }
  std::byte* block = carve_chunk_->wilderness();
  carve_chunk_->bump += block_size;
  return block;
}

void* LeaAllocator::allocate(std::size_t bytes) {
  const std::size_t request = bytes == 0 ? 1 : bytes;
  if (request >= mmap_threshold_) {
    // mmap path: dedicated chunk, released straight back on free.
    const std::size_t need = block_size_for(request);
    std::size_t granted = 0;
    std::byte* base = arena_->request(sizeof(ChunkHeader) + need, &granted);
    if (base == nullptr) {
      ++stats_.failed_allocs;
      return nullptr;
    }
    auto* chunk = reinterpret_cast<ChunkHeader*>(base);
    chunk->init(granted, nullptr);
    chunk->live_blocks = 1;
    chunk->bump = chunk->chunk_size;
    chunk->next = chunks_;
    if (chunks_ != nullptr) chunks_->prev = chunk;
    chunks_ = chunk;
    chunk_index_.add(chunk);
    std::byte* block = chunk->data();
    layout_.write_header(block, chunk->data_bytes(), false);
    note_alloc(layout_.live_payload(chunk->data_bytes()));
    return layout_.payload(block);
  }

  const std::size_t block_size = block_size_for(request);
  std::byte* block = take_from_bins(block_size);
  if (block == nullptr) {
    // No cached block fits and the wilderness may be short too: run the
    // deferred coalescing sweep before asking the system for more — the
    // "seldom" coalescing of the paper's Lea.
    bool wilderness_ok = false;
    for (ChunkHeader* c = chunks_; c != nullptr && !wilderness_ok;
         c = c->next) {
      wilderness_ok =
          c->owner == heap_tag() && c->wilderness_bytes() >= block_size;
    }
    if (!wilderness_ok && coalesce_sweep() > 0) {
      block = take_from_bins(block_size);
    }
  }
  std::size_t have = block_size;
  ChunkHeader* chunk = nullptr;
  if (block != nullptr) {
    have = layout_.read_size(block);
    chunk = chunk_index_.find(block);
    if (have - block_size >= kMinBlock) {
      // Split; the remainder goes back to its bin.
      std::byte* rem = block + block_size;
      const std::size_t rem_size = have - block_size;
      put_in_bin(rem, rem_size);
      std::byte* after = rem + rem_size;
      if (after < chunk->wilderness()) layout_.set_prev_free(after, true);
      ++stats_.splits;
      have = block_size;
    }
  } else {
    block = carve(block_size);
    if (block == nullptr) {
      ++stats_.failed_allocs;
      return nullptr;
    }
    chunk = carve_chunk_;
  }
  layout_.write_header(block, have, /*free=*/false, /*prev_free=*/false);
  std::byte* next = block + have;
  if (next < chunk->wilderness()) layout_.set_prev_free(next, false);
  ++chunk->live_blocks;
  note_alloc(layout_.live_payload(have));
  return layout_.payload(block);
}

std::size_t LeaAllocator::coalesce_sweep() {
  std::size_t merges = 0;
  for (ChunkHeader* chunk = chunks_; chunk != nullptr; chunk = chunk->next) {
    if (chunk->owner != heap_tag()) continue;
    std::byte* pos = chunk->data();
    std::byte* run_start = nullptr;
    std::size_t run_size = 0;
    std::size_t run_blocks = 0;

    auto flush = [&](bool into_wilderness) {
      if (run_start == nullptr) return;
      if (into_wilderness) {
        chunk->bump -= run_size;
        merges += run_blocks;
      } else if (run_blocks > 1) {
        put_in_bin(run_start, run_size);
        merges += run_blocks - 1;
      } else {
        put_in_bin(run_start, run_size);
      }
      run_start = nullptr;
      run_size = 0;
      run_blocks = 0;
    };

    while (pos < chunk->wilderness()) {
      const std::size_t sz = layout_.read_size(pos);
      if (layout_.read_free(pos)) {
        unbin(pos, sz);
        if (run_start == nullptr) run_start = pos;
        run_size += sz;
        ++run_blocks;
        pos += sz;
        if (pos == chunk->wilderness()) flush(/*into_wilderness=*/true);
      } else {
        flush(false);
        pos += sz;
      }
    }
    flush(false);
  }
  stats_.coalesces += merges;
  return merges;
}

void LeaAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  ChunkHeader* chunk = chunk_index_.find(ptr);
  if (chunk == nullptr) die("deallocate: pointer not owned by this manager");
  std::byte* block = layout_.block_of(static_cast<std::byte*>(ptr));
  if (chunk->owner == nullptr) {  // mmap path
    if (block != chunk->data()) die("deallocate: corrupt mmap block");
    note_free(layout_.live_payload(chunk->data_bytes()));
    chunk_index_.remove(chunk);
    if (chunk->prev != nullptr) chunk->prev->next = chunk->next;
    if (chunk->next != nullptr) chunk->next->prev = chunk->prev;
    if (chunks_ == chunk) chunks_ = chunk->next;
    arena_->release(chunk->base());
    ++stats_.chunks_released;
    return;
  }
  const std::size_t size = layout_.read_size(block);
  if (size == 0 || layout_.read_free(block)) {
    die("deallocate: double free or corrupt header");
  }
  note_free(layout_.live_payload(size));
  --chunk->live_blocks;
  // Deferred coalescing: straight to the bin, unmerged — the "huge
  // free-lists of unused blocks (in case they can be reused later)".
  put_in_bin(block, size);
}

std::size_t LeaAllocator::usable_size(const void* ptr) const {
  const ChunkHeader* chunk = chunk_index_.find(ptr);
  if (chunk == nullptr) die("usable_size: pointer not owned");
  const std::byte* block = layout_.block_of(ptr);
  if (chunk->owner == nullptr) {
    return layout_.live_payload(chunk->data_bytes());
  }
  return layout_.live_payload(layout_.read_size(block));
}

std::uint64_t LeaAllocator::work_steps() const {
  std::uint64_t steps = large_bin_->scan_steps();
  for (const auto& bin : small_bins_) steps += bin->scan_steps();
  return steps;
}

}  // namespace dmm::managers
