#ifndef DMM_MANAGERS_REGION_H
#define DMM_MANAGERS_REGION_H

#include <string>
#include <unordered_map>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/chunk.h"

namespace dmm::managers {

/// Region manager in the style of the embedded-RTOS allocators the paper
/// compares against for the 3D-reconstruction case study (Sec. 2/5): a
/// manual implementation of the "new kind of region managers [6] found in
/// new embedded OSs (e.g. RTEMS)".
///
/// Semantics, per the paper's description:
///   * one region per block size — "the block sizes of each region are
///     fixed to one block size", so mixed-size request streams create one
///     region per quantised size and cannot share memory across regions:
///     that cross-size isolation plus the quantisation is exactly the
///     internal fragmentation the paper measures against this baseline,
///   * inside a region: bump carving from region chunks plus a LIFO free
///     list of recycled blocks (blocks carry no tags; the size is implied
///     by region membership, recovered through the chunk index),
///   * regions hold their chunks for their whole lifetime; memory only
///     returns to the system through the explicit region-destroy
///     operation (destroy_empty_regions), which an embedded application
///     calls between processing stages, not per free.
class RegionAllocator : public alloc::Allocator {
 public:
  explicit RegionAllocator(sysmem::SystemArena& arena,
                           std::size_t region_chunk_bytes = 64 * 1024);
  ~RegionAllocator() override;

  [[nodiscard]] void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr) override;
  [[nodiscard]] std::size_t usable_size(const void* ptr) const override;
  [[nodiscard]] std::string name() const override { return "Regions"; }

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

  /// Explicit region-destroy: releases the chunks of every region with no
  /// live blocks.  Returns the number of regions destroyed.
  std::size_t destroy_empty_regions();

  /// Region block-size quantisation (fixed sizes per region).
  [[nodiscard]] static std::size_t quantize(std::size_t request);

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Region {
    std::size_t block_size = 0;  ///< fixed block size of this region
    alloc::ChunkHeader* chunks = nullptr;
    alloc::ChunkHeader* carve_chunk = nullptr;
    FreeNode* free_list = nullptr;
    std::size_t free_count = 0;
    std::size_t live = 0;  ///< live blocks across the region
  };

  [[nodiscard]] Region& region_for(std::size_t block_size);
  [[nodiscard]] std::byte* carve(Region& region);
  void destroy_region(Region& region);

  std::size_t region_chunk_bytes_;
  std::unordered_map<std::size_t, std::size_t> region_slot_;
  std::vector<std::unique_ptr<Region>> regions_;
  alloc::ChunkIndex chunk_index_;
  /// chunk -> region slot (regions are per size; blocks carry no tags).
  std::unordered_map<const alloc::ChunkHeader*, std::size_t> chunk_region_;
};

}  // namespace dmm::managers

#endif  // DMM_MANAGERS_REGION_H
