#ifndef DMM_MANAGERS_OBSTACK_H
#define DMM_MANAGERS_OBSTACK_H

#include <string>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/chunk.h"

namespace dmm::managers {

/// Obstack-style allocator — the custom manager "optimized for stack-like
/// behaviour" the paper runs on the 3D rendering case study (Sec. 5).
///
/// GNU obstacks allocate objects by bumping within chained chunks and
/// reclaim with LIFO discipline; freeing an object conceptually frees
/// everything allocated after it.  To drive it safely from a malloc/free
/// trace (where frees may arrive out of order), this implementation keeps
/// obstack economics while tolerating non-LIFO frees:
///
///   * allocation: bump-carve, one-word header with the object size,
///   * free of the *top* object: the bump pointer retreats, cascading over
///     any earlier objects already marked dead; fully empty chunks are
///     returned to the system (obstack_free releases chunks),
///   * free of a *buried* object: the object is tombstoned — its memory
///     stays put until everything above it dies.
///
/// On stack-like phases this reclaims as aggressively as a real obstack;
/// on non-stack phases tombstones pile up — exactly the "high memory
/// footprint penalty in these phases" the paper reports for Obstacks.
class ObstackAllocator : public alloc::Allocator {
 public:
  explicit ObstackAllocator(sysmem::SystemArena& arena,
                            std::size_t chunk_bytes = 16 * 1024);
  ~ObstackAllocator() override;

  [[nodiscard]] void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr) override;
  [[nodiscard]] std::size_t usable_size(const void* ptr) const override;
  [[nodiscard]] std::string name() const override { return "Obstacks"; }

  /// Bytes currently held by tombstoned (dead but unreclaimed) objects.
  [[nodiscard]] std::size_t tombstone_bytes() const {
    return tombstone_bytes_;
  }

 private:
  // Object = [size_t header: size | dead bit] [payload ...]
  static constexpr std::size_t kHeader = sizeof(std::size_t);
  static constexpr std::size_t kDeadBit = 1;

  [[nodiscard]] static std::size_t header_of(const std::byte* obj) {
    return *reinterpret_cast<const std::size_t*>(obj);
  }

  void pop_dead_tail(alloc::ChunkHeader* chunk);
  void release_if_empty(alloc::ChunkHeader* chunk);

  std::size_t chunk_bytes_;
  alloc::ChunkIndex chunk_index_;
  alloc::ChunkHeader* chunks_ = nullptr;  ///< top chunk first
  std::size_t tombstone_bytes_ = 0;
};

}  // namespace dmm::managers

#endif  // DMM_MANAGERS_OBSTACK_H
