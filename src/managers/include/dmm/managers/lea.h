#ifndef DMM_MANAGERS_LEA_H
#define DMM_MANAGERS_LEA_H

#include <array>
#include <string>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/block_layout.h"
#include "dmm/alloc/chunk.h"
#include "dmm/alloc/free_index.h"

namespace dmm::managers {

/// Lea-style allocator (simplified dlmalloc) — the Linux-lineage
/// general-purpose manager of the paper's comparison (Sec. 2/5).
///
/// Structure follows the dlmalloc 2.6 line the paper benchmarked, as
/// characterised in Sec. 5: "huge free-lists of unused blocks ... coalesce
/// and split seldomly":
///   * boundary tags: every block carries a size/status header; free
///     blocks replicate the size in a trailing footer,
///   * 32 exact-spaced small bins (32..280 bytes, step 8) holding
///     doubly-linked LIFO lists, plus one size-sorted large bin (best fit),
///   * *deferred* coalescing: frees go straight to their bin; adjacent
///     free blocks are merged only by a whole-heap sweep triggered when a
///     request cannot be served from the bins or the wilderness —
///     the "seldom" of the paper,
///   * splitting on allocation when the remainder is viable,
///   * requests above the mmap threshold get dedicated chunks returned to
///     the system on free; everything else is retained — dlmalloc trims
///     only the heap top, which our chunked core models by never
///     releasing pool chunks.
///
/// The retention policy is precisely why its Fig. 5 curve plateaus at the
/// high-water mark while the custom manager's tracks the live data.
class LeaAllocator : public alloc::Allocator {
 public:
  explicit LeaAllocator(sysmem::SystemArena& arena,
                        std::size_t chunk_bytes = 64 * 1024,
                        std::size_t mmap_threshold = 256 * 1024);
  ~LeaAllocator() override;

  [[nodiscard]] void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr) override;
  [[nodiscard]] std::size_t usable_size(const void* ptr) const override;
  [[nodiscard]] std::string name() const override { return "Lea"; }

  [[nodiscard]] std::uint64_t work_steps() const;

 private:
  static constexpr std::size_t kSmallBins = 32;
  static constexpr std::size_t kMinBlock = 32;   // header + 2 links + footer
  static constexpr std::size_t kSmallStep = 8;
  // Small bin i holds blocks of exactly kMinBlock + i*kSmallStep bytes.
  [[nodiscard]] static constexpr int small_bin_for(std::size_t block_size) {
    const std::size_t top = kMinBlock + (kSmallBins - 1) * kSmallStep;
    if (block_size > top) return -1;
    return static_cast<int>((block_size - kMinBlock) / kSmallStep);
  }

  [[nodiscard]] std::size_t block_size_for(std::size_t payload) const;
  [[nodiscard]] std::byte* take_from_bins(std::size_t block_size);
  void put_in_bin(std::byte* block, std::size_t size);
  void unbin(std::byte* block, std::size_t size);
  [[nodiscard]] std::byte* carve(std::size_t block_size);
  /// Deferred coalescing: merges every adjacent free run in every chunk
  /// (and retreats wilderness over trailing runs).  Returns merge count.
  std::size_t coalesce_sweep();

  std::size_t chunk_bytes_;
  std::size_t mmap_threshold_;
  alloc::BlockLayout layout_;
  alloc::ChunkIndex chunk_index_;
  std::array<std::unique_ptr<alloc::FreeIndex>, kSmallBins> small_bins_;
  std::unique_ptr<alloc::FreeIndex> large_bin_;
  alloc::ChunkHeader* chunks_ = nullptr;
  alloc::ChunkHeader* carve_chunk_ = nullptr;
};

}  // namespace dmm::managers

#endif  // DMM_MANAGERS_LEA_H
