#ifndef DMM_MANAGERS_REGISTRY_H
#define DMM_MANAGERS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/config.h"

namespace dmm::managers {

/// Factory over every manager in the library, so benches and examples can
/// iterate "all Table 1 contenders" uniformly.
///
/// Recognised names: "kingsley", "lea", "regions", "obstacks", "custom"
/// (the last one requires a decision vector).
[[nodiscard]] std::unique_ptr<alloc::Allocator> make_manager(
    const std::string& name, sysmem::SystemArena& arena,
    const alloc::DmmConfig* custom_config = nullptr);

/// The general-purpose / manually-customised baselines of Table 1.
[[nodiscard]] const std::vector<std::string>& baseline_names();

}  // namespace dmm::managers

#endif  // DMM_MANAGERS_REGISTRY_H
