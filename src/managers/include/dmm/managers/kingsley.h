#ifndef DMM_MANAGERS_KINGSLEY_H
#define DMM_MANAGERS_KINGSLEY_H

#include <array>
#include <string>
#include <unordered_map>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/chunk.h"
#include "dmm/alloc/size_class.h"

namespace dmm::managers {

/// Kingsley power-of-two segregated-storage allocator — the Windows-lineage
/// general-purpose manager the paper benchmarks against (Sec. 2/5).
///
/// Faithful to the classic BSD 4.2 design the survey describes, plus the
/// behaviour the paper observes in its DRR discussion ("an initial memory
/// region is reserved and distributed among the different lists of block
/// sizes; however, only a limited amount of block sizes is used and thus
/// memory is misused"):
///   * an initial reserve is pre-carved into blocks spread equally over
///     the small classes (16 B .. 4 KiB) at construction,
///   * requests are rounded up to the next power of two (huge internal
///     fragmentation for awkward sizes),
///   * one LIFO free list per class; freed blocks go back to their class
///     list and are NEVER split, coalesced, or returned to the system,
///   * each block carries a one-word header recording its class so free()
///     can find the list.
///
/// The result is the fastest manager in the library (a pop/push per op)
/// and the most memory-hungry — exactly its role in Table 1.
class KingsleyAllocator : public alloc::Allocator {
 public:
  explicit KingsleyAllocator(sysmem::SystemArena& arena,
                             std::size_t chunk_bytes = 64 * 1024,
                             std::size_t initial_reserve_bytes = 1 << 20);
  ~KingsleyAllocator() override;

  [[nodiscard]] void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr) override;
  [[nodiscard]] std::size_t usable_size(const void* ptr) const override;
  [[nodiscard]] std::string name() const override { return "Kingsley"; }

  /// Free blocks currently cached in class @p idx (tests).
  [[nodiscard]] std::size_t free_blocks_in_class(unsigned idx) const;

 private:
  struct FreeNode {
    FreeNode* next;
  };
  // Block = [size_t header: class block size] [payload ...]
  static constexpr std::size_t kHeader = sizeof(std::size_t);

  [[nodiscard]] std::byte* carve(std::size_t block_size);

  std::size_t chunk_bytes_;
  std::array<FreeNode*, alloc::SizeClass::kCount> bins_{};
  std::array<std::size_t, alloc::SizeClass::kCount> bin_counts_{};
  alloc::ChunkHeader* chunks_ = nullptr;  ///< singly chained, never freed
  alloc::ChunkHeader* carve_chunk_ = nullptr;
};

}  // namespace dmm::managers

#endif  // DMM_MANAGERS_KINGSLEY_H
