#include "dmm/managers/region.h"

#include <cstdio>
#include <cstdlib>

#include "dmm/alloc/size_class.h"

namespace dmm::managers {

using alloc::ChunkHeader;

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::managers::Region fatal: %s\n", what);
  std::abort();
}
}  // namespace

RegionAllocator::RegionAllocator(sysmem::SystemArena& arena,
                                 std::size_t region_chunk_bytes)
    : Allocator(arena), region_chunk_bytes_(region_chunk_bytes) {}

RegionAllocator::~RegionAllocator() {
  for (auto& region : regions_) {
    ChunkHeader* c = region->chunks;
    while (c != nullptr) {
      ChunkHeader* next = c->next;
      arena_->release(c->base());
      c = next;
    }
  }
}

RegionAllocator::Region& RegionAllocator::region_for(std::size_t block_size) {
  auto it = region_slot_.find(block_size);
  if (it != region_slot_.end()) return *regions_[it->second];
  regions_.push_back(std::make_unique<Region>());
  regions_.back()->block_size = block_size;
  region_slot_.emplace(block_size, regions_.size() - 1);
  return *regions_.back();
}

std::byte* RegionAllocator::carve(Region& region) {
  if (region.carve_chunk == nullptr ||
      region.carve_chunk->wilderness_bytes() < region.block_size) {
    region.carve_chunk = nullptr;
    for (ChunkHeader* c = region.chunks; c != nullptr; c = c->next) {
      if (c->wilderness_bytes() >= region.block_size) {
        region.carve_chunk = c;
        break;
      }
    }
  }
  if (region.carve_chunk == nullptr) {
    std::size_t total = sizeof(ChunkHeader) + region.block_size;
    if (total < region_chunk_bytes_) total = region_chunk_bytes_;
    std::size_t granted = 0;
    std::byte* base = arena_->request(total, &granted);
    if (base == nullptr) return nullptr;
    auto* chunk = reinterpret_cast<ChunkHeader*>(base);
    chunk->init(granted, nullptr);
    chunk->next = region.chunks;
    if (region.chunks != nullptr) region.chunks->prev = chunk;
    region.chunks = chunk;
    region.carve_chunk = chunk;
    chunk_index_.add(chunk);
    chunk_region_.emplace(chunk, region_slot_.at(region.block_size));
    ++stats_.chunks_grown;
  }
  std::byte* block = region.carve_chunk->wilderness();
  region.carve_chunk->bump += region.block_size;
  return block;
}

std::size_t RegionAllocator::quantize(std::size_t request) {
  // Fixed region block sizes: 64-byte steps for small blocks, 4 KiB steps
  // for large ones — the coarse granularity of embedded-OS partitions.
  if (request < sizeof(FreeNode)) request = sizeof(FreeNode);
  const std::size_t step = request >= 4096 ? 4096 : 64;
  return alloc::align_up(request, step);
}

void* RegionAllocator::allocate(std::size_t bytes) {
  const std::size_t request = bytes == 0 ? 1 : bytes;
  // Blocks carry no tags: the region's fixed size IS the block size.
  const std::size_t block_size = quantize(request);
  Region& region = region_for(block_size);
  std::byte* block = nullptr;
  if (region.free_list != nullptr) {
    block = reinterpret_cast<std::byte*>(region.free_list);
    region.free_list = region.free_list->next;
    --region.free_count;
  } else {
    block = carve(region);
    if (block == nullptr) {
      ++stats_.failed_allocs;
      return nullptr;
    }
  }
  ++region.live;
  note_alloc(block_size);
  return block;
}

void RegionAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  ChunkHeader* chunk = chunk_index_.find(ptr);
  if (chunk == nullptr) die("deallocate: pointer not owned by this manager");
  auto slot = chunk_region_.find(chunk);
  if (slot == chunk_region_.end()) die("deallocate: chunk without a region");
  Region& region = *regions_[slot->second];
  auto* node = reinterpret_cast<FreeNode*>(ptr);
  node->next = region.free_list;
  region.free_list = node;
  ++region.free_count;
  --region.live;
  note_free(region.block_size);
}

std::size_t RegionAllocator::destroy_empty_regions() {
  std::size_t destroyed = 0;
  for (auto& region : regions_) {
    if (region->live == 0 && region->chunks != nullptr) {
      destroy_region(*region);
      ++destroyed;
    }
  }
  return destroyed;
}

void RegionAllocator::destroy_region(Region& region) {
  // Entirely empty: region-destroy returns all chunks to the system.
  ChunkHeader* c = region.chunks;
  while (c != nullptr) {
    ChunkHeader* next = c->next;
    chunk_index_.remove(c);
    chunk_region_.erase(c);
    arena_->release(c->base());
    ++stats_.chunks_released;
    c = next;
  }
  region.chunks = nullptr;
  region.carve_chunk = nullptr;
  region.free_list = nullptr;
  region.free_count = 0;
}

std::size_t RegionAllocator::usable_size(const void* ptr) const {
  const ChunkHeader* chunk = chunk_index_.find(ptr);
  if (chunk == nullptr) die("usable_size: pointer not owned");
  return regions_[chunk_region_.at(chunk)]->block_size;
}

}  // namespace dmm::managers
