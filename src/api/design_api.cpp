// The unified request/reply API — validation, option bridges, trace
// resolution, the in-process adapter over design_manager(_family), and the
// line-based wire form.  See design_api.h for the contract.

#include "dmm/api/design_api.h"

#include <cstring>
#include <exception>
#include <limits>
#include <utility>

#include "dmm/alloc/config.h"
#include "dmm/core/design_space.h"
#include "dmm/trace/trace_store.h"
#include "dmm/workloads/workload.h"

namespace dmm::api {

namespace {

// ---- wire primitives ------------------------------------------------------

/// Splits @p text into lines ('\n'-separated, no trailing empty line for
/// text ending in a newline).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, nl - begin));
    begin = nl + 1;
  }
  return lines;
}

/// Splits "key rest of line" at the first space; rest is empty when the
/// line has no space.
void split_key(const std::string& line, std::string* key, std::string* rest) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    *key = line;
    rest->clear();
  } else {
    *key = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

/// Doubles travel as decimal IEEE-754 bit patterns: exact round trip, no
/// locale- or precision-dependent float formatting/parsing anywhere.
std::uint64_t double_to_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_to_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool parse_u64_field(const std::string& rest, std::uint64_t* out) {
  const auto v = core::parse_number(rest);
  if (!v) return false;
  *out = *v;
  return true;
}

bool parse_u32_field(const std::string& rest, std::uint32_t* out) {
  const auto v = core::parse_number(rest);
  if (!v || *v > std::numeric_limits<std::uint32_t>::max()) return false;
  *out = static_cast<std::uint32_t>(*v);
  return true;
}

bool parse_bool_field(const std::string& rest, bool* out) {
  if (rest == "0") {
    *out = false;
    return true;
  }
  if (rest == "1") {
    *out = true;
    return true;
  }
  return false;
}

bool parse_bits_field(const std::string& rest, double* out) {
  std::uint64_t bits = 0;
  if (!parse_u64_field(rest, &bits)) return false;
  *out = bits_to_double(bits);
  return true;
}

/// Checks a "dmm-<what>/<version>" first line; rejects other payload kinds
/// and future versions with a reason.
bool check_version(const std::string& line, const std::string& prefix,
                   std::uint32_t supported, std::string* why) {
  if (line.rfind(prefix, 0) != 0) {
    *why = "not a " + prefix.substr(0, prefix.size() - 1) + " payload";
    return false;
  }
  const auto version = core::parse_number(line.substr(prefix.size()));
  if (!version || *version != supported) {
    *why = "unsupported " + prefix.substr(0, prefix.size() - 1) +
           " version '" + line.substr(prefix.size()) + "'";
    return false;
  }
  return true;
}

const char* aggregate_name(core::FamilyAggregate aggregate) {
  return aggregate == core::FamilyAggregate::kMaxPeak ? "max" : "wsum";
}

// ---- decision-vector wire form --------------------------------------------
//
// A full DmmConfig travels as one "config" line of 20 integers: the 15 tree
// leaf indices in all_trees() order, then the 5 numeric knobs (chunk,
// big-request, static-pool, deferred-split-min, max-class-log2).  Leaf
// *indices* rather than names keep the line free of the signature grammar
// and make range validation exact.

std::string config_to_wire(const alloc::DmmConfig& cfg) {
  std::string out;
  for (const core::TreeId t : core::all_trees()) {
    out += std::to_string(core::get_leaf(cfg, t)) + " ";
  }
  out += std::to_string(cfg.chunk_bytes) + " ";
  out += std::to_string(cfg.big_request_bytes) + " ";
  out += std::to_string(cfg.static_pool_bytes) + " ";
  out += std::to_string(cfg.deferred_split_min) + " ";
  out += std::to_string(cfg.max_class_log2);
  return out;
}

bool parse_config_field(const std::string& rest, alloc::DmmConfig* out) {
  std::vector<std::uint64_t> values;
  std::size_t begin = 0;
  while (begin < rest.size()) {
    std::size_t end = rest.find(' ', begin);
    if (end == std::string::npos) end = rest.size();
    if (end == begin) return false;  // double space / leading space
    const auto v = core::parse_number(rest.substr(begin, end - begin));
    if (!v) return false;
    values.push_back(*v);
    begin = end + 1;
  }
  const std::vector<core::TreeId>& trees = core::all_trees();
  if (values.size() != trees.size() + 5) return false;
  alloc::DmmConfig cfg;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (values[i] >=
        static_cast<std::uint64_t>(core::leaf_count(trees[i]))) {
      return false;
    }
    core::set_leaf(cfg, trees[i], static_cast<int>(values[i]));
  }
  const std::size_t n = trees.size();
  if (values[n + 4] > std::numeric_limits<unsigned>::max()) return false;
  cfg.chunk_bytes = static_cast<std::size_t>(values[n]);
  cfg.big_request_bytes = static_cast<std::size_t>(values[n + 1]);
  cfg.static_pool_bytes = static_cast<std::size_t>(values[n + 2]);
  cfg.deferred_split_min = static_cast<std::size_t>(values[n + 3]);
  cfg.max_class_log2 = static_cast<unsigned>(values[n + 4]);
  *out = cfg;
  return true;
}

std::string bool_field(const char* key, bool v) {
  return std::string(key) + (v ? " 1\n" : " 0\n");
}

std::string u64_field(const char* key, std::uint64_t v) {
  return std::string(key) + " " + std::to_string(v) + "\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// Validation and bridges
// ---------------------------------------------------------------------------

bool validate_request(const DesignRequest& req, std::string* why) {
  if (req.traces.empty()) {
    *why = "request has no traces";
    return false;
  }
  for (const TraceRef& ref : req.traces) {
    if (ref.kind == TraceRef::Kind::kWorkload && ref.workload.empty()) {
      *why = "trace ref has an empty workload name";
      return false;
    }
    if (ref.kind == TraceRef::Kind::kFile && ref.path.empty()) {
      *why = "trace ref has an empty file path";
      return false;
    }
  }
  if (!core::parse_search_spec(req.search_text)) {
    *why = "unparseable search spec '" + req.search_text + "'";
    return false;
  }
  const bool family = req.traces.size() >= 2;
  if (req.aggregate_set && !family) {
    *why = "an explicit aggregate only applies to family requests "
           "(two or more traces)";
    return false;
  }
  if (!req.weights.empty()) {
    if (!family) {
      *why = "weights only apply to family requests";
      return false;
    }
    if (req.weights.size() != req.traces.size()) {
      *why = std::to_string(req.weights.size()) + " weights for " +
             std::to_string(req.traces.size()) + " traces";
      return false;
    }
  }
  if (req.validate && family) {
    *why = "validate applies to single-trace requests only";
    return false;
  }
  return true;
}

core::ExplorerOptions to_explorer_options(const DesignRequest& req) {
  core::ExplorerOptions opts;
  opts.num_threads = req.num_threads;
  opts.time_weight = req.time_weight;
  opts.cache = req.cache;
  const auto spec = core::parse_search_spec(req.search_text);
  if (spec) opts.search = *spec;
  return opts;
}

core::MethodologyOptions to_methodology_options(const DesignRequest& req) {
  core::MethodologyOptions options;
  options.explorer_options = to_explorer_options(req);
  options.validate = req.validate;
  options.cache_file = req.cache_file;
  return options;
}

core::FamilyDesignOptions to_family_options(const DesignRequest& req) {
  core::FamilyDesignOptions options;
  options.explorer_options = to_explorer_options(req);
  options.aggregate = req.aggregate;
  options.weights = req.weights;
  options.cache_file = req.cache_file;
  return options;
}

bool load_traces(const DesignRequest& req, std::vector<core::AllocTrace>* out,
                 std::string* why) {
  std::vector<core::AllocTrace> traces;
  traces.reserve(req.traces.size());
  for (const TraceRef& ref : req.traces) {
    if (ref.kind == TraceRef::Kind::kWorkload) {
      // Scan instead of workloads::case_study(): an unknown name in a
      // request must report, not abort the process.
      const workloads::Workload* found = nullptr;
      std::string names;
      for (const workloads::Workload& w : workloads::case_studies()) {
        if (w.name == ref.workload) found = &w;
        if (!names.empty()) names += ", ";
        names += w.name;
      }
      if (found == nullptr) {
        *why = "unknown workload '" + ref.workload + "' (have " + names + ")";
        return false;
      }
      traces.push_back(workloads::record_trace(*found, ref.seed));
    } else if (trace::is_trace_file(ref.path)) {
      // Columnar .dmmt store: open (header + checksum validation) and
      // materialize.  Daemon scoring replays traces many times across
      // candidates, so a one-time decode beats per-pass block decoding.
      std::string reason;
      const auto mapped = trace::MappedTrace::open(ref.path, &reason);
      if (mapped == nullptr) {
        *why = "trace '" + ref.path + "' rejected: " + reason;
        return false;
      }
      traces.push_back(mapped->materialize());
    } else {
      core::AllocTrace trace = core::AllocTrace::load(ref.path);
      if (trace.events().empty()) {
        *why = "trace '" + ref.path + "' is empty or unreadable";
        return false;
      }
      std::string reason;
      if (!trace.validate(&reason)) {
        *why = "trace '" + ref.path + "' is malformed: " + reason;
        return false;
      }
      traces.push_back(std::move(trace));
    }
    if (req.max_events != 0 &&
        traces.back().events().size() > req.max_events) {
      // Same cap the benches apply: cut, then close the leaks the cut
      // introduced so the trace stays replayable.
      traces.back().events().resize(
          static_cast<std::size_t>(req.max_events));
      traces.back().close_leaks();
    }
  }
  *out = std::move(traces);
  return true;
}

// ---------------------------------------------------------------------------
// The in-process adapter
// ---------------------------------------------------------------------------

DesignReply run_design_request(const DesignRequest& req) {
  DesignReply reply;
  std::string why;
  if (!validate_request(req, &why)) {
    reply.error = why;
    return reply;
  }
  std::vector<core::AllocTrace> traces;
  if (!load_traces(req, &traces, &why)) {
    reply.error = why;
    return reply;
  }
  try {
    if (traces.size() >= 2) {
      const core::FamilyDesignResult family =
          core::design_manager_family(traces, to_family_options(req));
      reply.family = true;
      reply.feasible = family.feasible;
      reply.phase_signatures.push_back(alloc::signature(family.best));
      reply.phase_configs.push_back(family.best);
      reply.best_peak = family.search.best_sim.peak_footprint;
      reply.aggregate_objective = family.aggregate_objective;
      reply.simulations = family.search.simulations;
      reply.cache_hits = family.search.cache_hits;
      reply.cross_search_hits = family.search.cross_search_hits;
      reply.persisted_hits = family.search.persisted_hits;
    } else {
      const core::MethodologyResult design =
          core::design_manager(traces[0], to_methodology_options(req));
      reply.feasible = true;
      for (const alloc::DmmConfig& cfg : design.phase_configs) {
        reply.phase_signatures.push_back(alloc::signature(cfg));
        reply.phase_configs.push_back(cfg);
      }
      for (const core::ExplorationResult& r : design.phase_results) {
        // Empty phases carry a default (never-searched) result — skip
        // them; a searched phase always charged at least one evaluation.
        if (r.simulations + r.cache_hits == 0) continue;
        if (!r.feasible) reply.feasible = false;
        if (r.best_sim.peak_footprint > reply.best_peak) {
          reply.best_peak = r.best_sim.peak_footprint;
        }
      }
      reply.simulations = design.total_simulations;
      reply.cache_hits = design.total_cache_hits;
      reply.cross_search_hits = design.total_cross_search_hits;
      reply.persisted_hits = design.total_persisted_hits;
    }
    reply.evaluations = reply.simulations + reply.cache_hits;
    reply.ok = true;
  } catch (const std::exception& e) {
    reply = DesignReply{};
    reply.error = e.what();
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

std::string serialize_request(const DesignRequest& req) {
  std::string out =
      "dmm-request/" + std::to_string(DesignRequest::kVersion) + "\n";
  for (const TraceRef& ref : req.traces) {
    if (ref.kind == TraceRef::Kind::kWorkload) {
      out += "trace workload " + ref.workload + " " +
             std::to_string(ref.seed) + "\n";
    } else {
      out += "trace file " + ref.path + "\n";
    }
  }
  out += u64_field("max-events", req.max_events);
  out += std::string("aggregate ") + aggregate_name(req.aggregate) + "\n";
  out += bool_field("aggregate-set", req.aggregate_set);
  for (const double w : req.weights) {
    out += u64_field("weight", double_to_bits(w));
  }
  out += "search " + req.search_text + "\n";
  out += u64_field("threads", req.num_threads);
  out += u64_field("time-weight", double_to_bits(req.time_weight));
  out += bool_field("cache", req.cache);
  out += bool_field("validate", req.validate);
  if (!req.cache_file.empty()) out += "cache-file " + req.cache_file + "\n";
  out += u64_field("budget", req.eval_budget);
  return out;
}

bool parse_request(const std::string& text, DesignRequest* out,
                   std::string* why) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) {
    *why = "empty request";
    return false;
  }
  if (!check_version(lines[0], "dmm-request/", DesignRequest::kVersion,
                     why)) {
    return false;
  }
  DesignRequest req;
  req.traces.clear();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string key;
    std::string rest;
    split_key(lines[i], &key, &rest);
    bool valid = true;
    if (key == "trace") {
      std::string kind;
      std::string tail;
      split_key(rest, &kind, &tail);
      TraceRef ref;
      if (kind == "workload") {
        std::string seed_text;
        split_key(tail, &ref.workload, &seed_text);
        const auto seed = core::parse_number(seed_text);
        valid = !ref.workload.empty() && seed &&
                *seed <= std::numeric_limits<unsigned>::max();
        if (valid) {
          ref.kind = TraceRef::Kind::kWorkload;
          ref.seed = static_cast<unsigned>(*seed);
        }
      } else if (kind == "file") {
        valid = !tail.empty();
        ref.kind = TraceRef::Kind::kFile;
        ref.path = tail;
        ref.workload.clear();
      } else {
        valid = false;
      }
      if (valid) req.traces.push_back(std::move(ref));
    } else if (key == "max-events") {
      valid = parse_u64_field(rest, &req.max_events);
    } else if (key == "aggregate") {
      if (rest == "max") {
        req.aggregate = core::FamilyAggregate::kMaxPeak;
      } else if (rest == "wsum") {
        req.aggregate = core::FamilyAggregate::kWeightedSum;
      } else {
        valid = false;
      }
    } else if (key == "aggregate-set") {
      valid = parse_bool_field(rest, &req.aggregate_set);
    } else if (key == "weight") {
      double w = 0.0;
      valid = parse_bits_field(rest, &w);
      if (valid) req.weights.push_back(w);
    } else if (key == "search") {
      valid = !rest.empty();
      req.search_text = rest;
    } else if (key == "threads") {
      std::uint64_t v = 0;
      valid = parse_u64_field(rest, &v) &&
              v <= std::numeric_limits<unsigned>::max();
      if (valid) req.num_threads = static_cast<unsigned>(v);
    } else if (key == "time-weight") {
      valid = parse_bits_field(rest, &req.time_weight);
    } else if (key == "cache") {
      valid = parse_bool_field(rest, &req.cache);
    } else if (key == "validate") {
      valid = parse_bool_field(rest, &req.validate);
    } else if (key == "cache-file") {
      valid = !rest.empty();
      req.cache_file = rest;
    } else if (key == "budget") {
      valid = parse_u64_field(rest, &req.eval_budget);
    } else {
      *why = "unknown request field '" + key + "'";
      return false;
    }
    if (!valid) {
      *why = "bad request field '" + lines[i] + "'";
      return false;
    }
  }
  if (!validate_request(req, why)) return false;
  *out = std::move(req);
  return true;
}

std::string serialize_reply(const DesignReply& reply) {
  std::string out =
      "dmm-reply/" + std::to_string(DesignReply::kVersion) + "\n";
  out += bool_field("ok", reply.ok);
  if (!reply.error.empty()) out += "error " + reply.error + "\n";
  out += bool_field("cancelled", reply.cancelled);
  out += bool_field("budget-exhausted", reply.budget_exhausted);
  out += bool_field("family", reply.family);
  out += bool_field("feasible", reply.feasible);
  for (const std::string& sig : reply.phase_signatures) {
    out += "phase " + sig + "\n";
  }
  for (const alloc::DmmConfig& cfg : reply.phase_configs) {
    out += "config " + config_to_wire(cfg) + "\n";
  }
  out += u64_field("best-peak", reply.best_peak);
  out += u64_field("aggregate-objective",
                   double_to_bits(reply.aggregate_objective));
  out += u64_field("evaluations", reply.evaluations);
  out += u64_field("simulations", reply.simulations);
  out += u64_field("cache-hits", reply.cache_hits);
  out += u64_field("cross-search-hits", reply.cross_search_hits);
  out += u64_field("persisted-hits", reply.persisted_hits);
  out += u64_field("cache-entries", reply.cache_entries);
  out += u64_field("cache-evictions", reply.cache_evictions);
  return out;
}

bool parse_reply(const std::string& text, DesignReply* out,
                 std::string* why) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) {
    *why = "empty reply";
    return false;
  }
  if (!check_version(lines[0], "dmm-reply/", DesignReply::kVersion, why)) {
    return false;
  }
  DesignReply reply;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string key;
    std::string rest;
    split_key(lines[i], &key, &rest);
    bool valid = true;
    if (key == "ok") {
      valid = parse_bool_field(rest, &reply.ok);
    } else if (key == "error") {
      reply.error = rest;
    } else if (key == "cancelled") {
      valid = parse_bool_field(rest, &reply.cancelled);
    } else if (key == "budget-exhausted") {
      valid = parse_bool_field(rest, &reply.budget_exhausted);
    } else if (key == "family") {
      valid = parse_bool_field(rest, &reply.family);
    } else if (key == "feasible") {
      valid = parse_bool_field(rest, &reply.feasible);
    } else if (key == "phase") {
      valid = !rest.empty();
      if (valid) reply.phase_signatures.push_back(rest);
    } else if (key == "config") {
      alloc::DmmConfig cfg;
      valid = parse_config_field(rest, &cfg);
      if (valid) reply.phase_configs.push_back(cfg);
    } else if (key == "best-peak") {
      valid = parse_u64_field(rest, &reply.best_peak);
    } else if (key == "aggregate-objective") {
      valid = parse_bits_field(rest, &reply.aggregate_objective);
    } else if (key == "evaluations") {
      valid = parse_u64_field(rest, &reply.evaluations);
    } else if (key == "simulations") {
      valid = parse_u64_field(rest, &reply.simulations);
    } else if (key == "cache-hits") {
      valid = parse_u64_field(rest, &reply.cache_hits);
    } else if (key == "cross-search-hits") {
      valid = parse_u64_field(rest, &reply.cross_search_hits);
    } else if (key == "persisted-hits") {
      valid = parse_u64_field(rest, &reply.persisted_hits);
    } else if (key == "cache-entries") {
      valid = parse_u64_field(rest, &reply.cache_entries);
    } else if (key == "cache-evictions") {
      valid = parse_u64_field(rest, &reply.cache_evictions);
    } else {
      *why = "unknown reply field '" + key + "'";
      return false;
    }
    if (!valid) {
      *why = "bad reply field '" + lines[i] + "'";
      return false;
    }
  }
  *out = std::move(reply);
  return true;
}

std::string serialize_progress(const ProgressEvent& event) {
  std::string out =
      "dmm-progress/" + std::to_string(ProgressEvent::kVersion) + "\n";
  out += "phase " + std::to_string(event.phase) + " " +
         std::to_string(event.phase_count) + "\n";
  out += u64_field("evaluations", event.evaluations);
  out += u64_field("simulations", event.simulations);
  out += u64_field("cache-hits", event.cache_hits);
  if (event.has_incumbent) {
    out += u64_field("incumbent-peak", event.incumbent_peak);
    out += "incumbent " + event.incumbent + "\n";
  }
  return out;
}

bool parse_progress(const std::string& text, ProgressEvent* out,
                    std::string* why) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) {
    *why = "empty progress event";
    return false;
  }
  if (!check_version(lines[0], "dmm-progress/", ProgressEvent::kVersion,
                     why)) {
    return false;
  }
  ProgressEvent event;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string key;
    std::string rest;
    split_key(lines[i], &key, &rest);
    bool valid = true;
    if (key == "phase") {
      std::string first;
      std::string second;
      split_key(rest, &first, &second);
      valid = parse_u32_field(first, &event.phase) &&
              parse_u32_field(second, &event.phase_count);
    } else if (key == "evaluations") {
      valid = parse_u64_field(rest, &event.evaluations);
    } else if (key == "simulations") {
      valid = parse_u64_field(rest, &event.simulations);
    } else if (key == "cache-hits") {
      valid = parse_u64_field(rest, &event.cache_hits);
    } else if (key == "incumbent-peak") {
      valid = parse_u64_field(rest, &event.incumbent_peak);
    } else if (key == "incumbent") {
      valid = !rest.empty();
      event.incumbent = rest;
      event.has_incumbent = true;
    } else {
      *why = "unknown progress field '" + key + "'";
      return false;
    }
    if (!valid) {
      *why = "bad progress field '" + lines[i] + "'";
      return false;
    }
  }
  *out = std::move(event);
  return true;
}

// ---------------------------------------------------------------------------
// RequestCli
// ---------------------------------------------------------------------------

namespace {

/// Matches `--name VALUE` / `--name=VALUE` without prefix confusion
/// (the terminator after @p name must be '=' or end-of-argument).
bool match_flag(int argc, char** argv, int* i, const char* name,
                std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(argv[*i], name, n) != 0) return false;
  if (argv[*i][n] == '=') {
    *value = argv[*i] + n + 1;
    return true;
  }
  if (argv[*i][n] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

RequestCli::RequestCli(std::string default_workload)
    : default_workload_(std::move(default_workload)) {}

RequestCli::Arg RequestCli::consume(int argc, char** argv, int* i) {
  std::string value;
  if (match_flag(argc, argv, i, "--search", &value)) {
    if (!core::parse_search_spec(value)) {
      error_ = "unknown --search value '" + value +
               "' (want greedy, beam:K, anneal[:SEED], exhaustive[:N], "
               "random[:N[:SEED]], or portfolio[:BUDGET]:CHILD+CHILD+...)";
      return Arg::kError;
    }
    request.search_text = value;
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--cache-file", &value)) {
    request.cache_file = value;
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--threads", &value)) {
    const auto v = core::parse_number(value);
    if (!v || *v > std::numeric_limits<unsigned>::max()) {
      error_ = "--threads must be an integer in [0, " +
               std::to_string(std::numeric_limits<unsigned>::max()) +
               "], got '" + value + "'";
      return Arg::kError;
    }
    request.num_threads = static_cast<unsigned>(*v);
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--budget", &value)) {
    const auto v = core::parse_number(value);
    if (!v) {
      error_ = "--budget must be a non-negative integer, got '" + value + "'";
      return Arg::kError;
    }
    request.eval_budget = *v;
    return Arg::kConsumed;
  }
  if (!allow_trace_flags) return Arg::kNotMine;
  if (match_flag(argc, argv, i, "--trace", &value)) {
    if (value.empty()) {
      error_ = "--trace needs a file path";
      return Arg::kError;
    }
    TraceRef ref;
    ref.kind = TraceRef::Kind::kFile;
    ref.path = value;
    request.traces.push_back(std::move(ref));
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--family", &value)) {
    family_list_ = value;
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--aggregate", &value)) {
    if (value == "max") {
      request.aggregate = core::FamilyAggregate::kMaxPeak;
    } else if (value == "wsum") {
      request.aggregate = core::FamilyAggregate::kWeightedSum;
    } else {
      error_ =
          "unknown --aggregate value '" + value + "' (want max or wsum)";
      return Arg::kError;
    }
    request.aggregate_set = true;
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--workload", &value)) {
    if (value.empty()) {
      error_ = "--workload needs a case-study name";
      return Arg::kError;
    }
    default_workload_ = value;
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--seed", &value)) {
    const auto v = core::parse_number(value);
    if (!v || *v > std::numeric_limits<unsigned>::max()) {
      error_ = "--seed must be an integer in [0, " +
               std::to_string(std::numeric_limits<unsigned>::max()) +
               "], got '" + value + "'";
      return Arg::kError;
    }
    seed_ = static_cast<unsigned>(*v);
    return Arg::kConsumed;
  }
  if (match_flag(argc, argv, i, "--max-events", &value)) {
    const auto v = core::parse_number(value);
    if (!v) {
      error_ =
          "--max-events must be a non-negative integer, got '" + value + "'";
      return Arg::kError;
    }
    request.max_events = *v;
    return Arg::kConsumed;
  }
  return Arg::kNotMine;
}

bool RequestCli::finish() {
  if (!family_list_.empty()) {
    std::size_t begin = 0;
    for (;;) {
      const std::size_t comma = family_list_.find(',', begin);
      const std::string token = family_list_.substr(begin, comma - begin);
      if (token.empty()) {
        error_ = "--family has an empty element";
        return false;
      }
      TraceRef ref;
      if (token.find_first_not_of("0123456789") == std::string::npos) {
        const auto seed = core::parse_number(token);
        if (!seed || *seed > std::numeric_limits<unsigned>::max()) {
          error_ = "a --family seed must be an integer in [0, " +
                   std::to_string(std::numeric_limits<unsigned>::max()) +
                   "], got '" + token + "'";
          return false;
        }
        ref.kind = TraceRef::Kind::kWorkload;
        ref.workload = default_workload_;
        ref.seed = static_cast<unsigned>(*seed);
      } else {
        ref.kind = TraceRef::Kind::kFile;
        ref.path = token;
        ref.workload.clear();
      }
      request.traces.push_back(std::move(ref));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (request.traces.size() < 2) {
      error_ = "a family needs at least two traces";
      return false;
    }
  } else if (request.aggregate_set) {
    // Silently running a single-trace design after the user asked for a
    // family fold would misreport what was designed.
    error_ = "--aggregate only applies to --family runs";
    return false;
  } else if (allow_trace_flags && request.traces.empty()) {
    TraceRef ref;
    ref.kind = TraceRef::Kind::kWorkload;
    ref.workload = default_workload_;
    ref.seed = seed_;
    request.traces.push_back(std::move(ref));
  }
  if (!allow_trace_flags) return true;
  std::string why;
  if (!validate_request(request, &why)) {
    error_ = why;
    return false;
  }
  return true;
}

std::string RequestCli::flags_help() const {
  std::string help =
      "[--search SPEC] [--cache-file PATH] [--threads N] [--budget N]";
  if (allow_trace_flags) {
    help += " [--workload NAME] [--seed N] [--max-events N] "
            "[--trace FILE] [--family T1,T2,...] [--aggregate max|wsum]";
  }
  return help;
}

}  // namespace dmm::api
