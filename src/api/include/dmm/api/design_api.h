#ifndef DMM_API_DESIGN_API_H
#define DMM_API_DESIGN_API_H

// The unified request/reply surface of the design methodology.
//
// Everything a caller can ask the library to do — "design a manager for
// these traces, with this search, under these knobs" — is one validated,
// versioned value type (DesignRequest) instead of the ExplorerOptions /
// MethodologyOptions / FamilyDesignOptions / CLI-flag spread that accreted
// across the earlier milestones.  One request type serves three fronts:
//
//   * the library: run_design_request() executes a request in-process and
//     is a thin adapter over design_manager()/design_manager_family() —
//     results are bit-for-bit what the underlying entry points return;
//   * the CLIs: RequestCli parses the shared flag surface (--search,
//     --family, --cache-file, ...) into a request, so the example binaries
//     stop re-plumbing flags by hand;
//   * the daemon: dmm_serve (src/serve) receives serialized requests over
//     a socket and answers with serialized replies/progress events.
//
// The wire form is a line-based text format (serialize_* / parse_*), with
// the same untrusted-input discipline as the cache snapshot: a malformed
// request parses to a clean error, never to a half-filled struct.  Doubles
// travel as decimal IEEE-754 bit patterns, so a value round-trips exactly
// and parsing never touches locale- or precision-dependent float parsing.

#include <cstdint>
#include <string>
#include <vector>

#include "dmm/alloc/config.h"
#include "dmm/core/methodology.h"
#include "dmm/core/search.h"
#include "dmm/core/trace.h"

namespace dmm::api {

/// Where one trace of a request comes from: a named case-study workload
/// recorded in-process (seeded, deterministic) or a trace file written by
/// trace_tool / AllocTrace::save.
struct TraceRef {
  enum class Kind : std::uint8_t { kWorkload, kFile };
  Kind kind = Kind::kWorkload;
  std::string workload = "drr";  ///< kWorkload: case-study name
  unsigned seed = 1;             ///< kWorkload: record_trace seed
  std::string path;              ///< kFile: trace file path
};

/// One design request — the whole ask, nothing implicit.  One trace means
/// a single-trace methodology run (phase split + per-phase search, the
/// design_manager() flow); two or more mean a family design (one vector
/// for the whole set, the design_manager_family() flow).
struct DesignRequest {
  /// Version of this struct's wire form (serialize_request emits it,
  /// parse_request rejects anything newer).
  static constexpr std::uint32_t kVersion = 1;

  std::vector<TraceRef> traces;

  /// Truncate every loaded trace to this many events (0 = full trace);
  /// the cut's leaks are closed so the trace stays replayable.
  std::uint64_t max_events = 0;

  /// Family fold (ignored for single-trace requests).  `aggregate_set`
  /// mirrors the CLI contract: an explicit --aggregate choice on a
  /// non-family request is a validation error, not a silent no-op.
  core::FamilyAggregate aggregate = core::FamilyAggregate::kMaxPeak;
  bool aggregate_set = false;
  /// kWeightedSum member weights; empty = 1.0 each, anything else must
  /// match the trace count.
  std::vector<double> weights;

  /// The search strategy, in the same grammar the --search flag accepts
  /// (see core::parse_search_spec).  Kept as text — the one authoritative
  /// form — and parsed on demand, so a request can never carry a spec
  /// that disagrees with its own text.
  std::string search_text = "greedy";

  /// Candidate-evaluation parallelism (ExplorerOptions::num_threads:
  /// 1 = serial, 0 = one worker per hardware thread).  Results are
  /// bit-identical regardless.
  unsigned num_threads = 1;
  /// Secondary objective weight (ExplorerOptions::time_weight).
  double time_weight = 0.0;
  /// Memoize candidate scores (ExplorerOptions::cache).
  bool cache = true;
  /// Cross-check each phase walk against exhaustive ground truth
  /// (MethodologyOptions::validate; single-trace requests only).
  bool validate = false;
  /// Persist the run's score cache across processes (the cache_file knob
  /// of MethodologyOptions / FamilyDesignOptions).  The daemon rejects
  /// requests carrying this: its snapshot is daemon-owned.
  std::string cache_file;

  /// Evaluation budget for daemon scheduling: dmm_serve stops dealing
  /// step() slices to the request's search once this many evaluations
  /// were charged and finalizes with the incumbent (0 = unlimited).  The
  /// in-process path runs searches to their natural end — a strategy's
  /// own budget (random:N, portfolio:BUDGET, ...) is the portable way to
  /// bound work identically on both paths.
  std::uint64_t eval_budget = 0;
};

/// True iff @p req is well-formed (traces present and individually sane,
/// search text parseable, weights/aggregate consistent with the trace
/// count); fills @p why otherwise.
[[nodiscard]] bool validate_request(const DesignRequest& req,
                                    std::string* why);

/// The per-search knob subset of a request (search/threads/time-weight/
/// cache); shared_cache and cache_file stay unset — run-level concerns.
/// Requires a valid request (the search text must parse).
[[nodiscard]] core::ExplorerOptions to_explorer_options(
    const DesignRequest& req);

/// The single-trace methodology bridge: explorer options plus validate and
/// the run-level cache_file.
[[nodiscard]] core::MethodologyOptions to_methodology_options(
    const DesignRequest& req);

/// The family bridge: explorer options plus aggregate/weights and the
/// run-level cache_file.
[[nodiscard]] core::FamilyDesignOptions to_family_options(
    const DesignRequest& req);

/// Resolves every TraceRef of @p req into a loaded, validated trace (in
/// request order), applying the max_events cap.  False (with @p why) on an
/// unknown workload name, an unreadable/empty/malformed trace file — the
/// loud-failure contract the CLIs had, minus the exit(2).
[[nodiscard]] bool load_traces(const DesignRequest& req,
                               std::vector<core::AllocTrace>* out,
                               std::string* why);

/// What a design run produced, flattened for the wire.  `phase_signatures`
/// is the designed decision vector per phase (alloc::signature form) —
/// one entry for single-phase and family runs.
struct DesignReply {
  static constexpr std::uint32_t kVersion = 1;

  bool ok = false;
  std::string error;       ///< why, when !ok
  bool cancelled = false;  ///< request was cancelled mid-search (daemon)
  /// Daemon scheduling only: the eval budget ran out before the search's
  /// natural end; the reply carries the incumbent at that point.
  bool budget_exhausted = false;

  bool family = false;
  bool feasible = false;
  std::vector<std::string> phase_signatures;
  /// The designed decision vectors themselves, parallel to
  /// phase_signatures.  Signatures stay the human/parity-check form; these
  /// carry the full config (numeric knobs included) so a caller can feed
  /// the design straight into runtime::save_config_artifact /
  /// runtime::DesignedAllocator without re-deriving it.
  std::vector<alloc::DmmConfig> phase_configs;
  /// Single-trace: the worst phase's best peak; family: the aggregate
  /// best's peak.  Informational — parity checks compare signatures.
  std::uint64_t best_peak = 0;
  double aggregate_objective = 0.0;  ///< family only

  // Search-cost accounting, summed across every search of the run.
  std::uint64_t evaluations = 0;  ///< simulations + cache_hits
  std::uint64_t simulations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cross_search_hits = 0;
  std::uint64_t persisted_hits = 0;

  // Daemon cache state after the run (0 on the in-process path).
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_evictions = 0;
};

/// One progress beat of an in-flight daemon request, streamed after each
/// scheduler slice.
struct ProgressEvent {
  static constexpr std::uint32_t kVersion = 1;

  std::uint32_t phase = 0;        ///< phase being searched (0-based)
  std::uint32_t phase_count = 0;  ///< total phases of the request
  std::uint64_t evaluations = 0;  ///< charged so far, whole request
  std::uint64_t simulations = 0;
  std::uint64_t cache_hits = 0;
  bool has_incumbent = false;
  std::uint64_t incumbent_peak = 0;
  std::string incumbent;  ///< alloc::signature of the incumbent
};

/// Executes @p req in-process: loads its traces and runs the matching
/// library entry point (design_manager for one trace, design_manager_family
/// for several).  Never throws for request-shaped problems — a bad request
/// or unloadable trace comes back as `ok = false` with the reason.
[[nodiscard]] DesignReply run_design_request(const DesignRequest& req);

// ---------------------------------------------------------------------------
// Wire form.  serialize_* emit the versioned line format; parse_* accept
// only well-formed input of a known version and report why otherwise,
// leaving *out untouched on failure.
// ---------------------------------------------------------------------------

[[nodiscard]] std::string serialize_request(const DesignRequest& req);
[[nodiscard]] bool parse_request(const std::string& text, DesignRequest* out,
                                 std::string* why);

[[nodiscard]] std::string serialize_reply(const DesignReply& reply);
[[nodiscard]] bool parse_reply(const std::string& text, DesignReply* out,
                               std::string* why);

[[nodiscard]] std::string serialize_progress(const ProgressEvent& event);
[[nodiscard]] bool parse_progress(const std::string& text, ProgressEvent* out,
                                  std::string* why);

// ---------------------------------------------------------------------------
// Shared CLI surface: one argv parser for every binary that builds a
// DesignRequest (the example CLIs, dmm_client).  Flag semantics are the
// ones the examples always had: --search SPEC, --cache-file PATH,
// --family T1,T2,... (digits = a workload seed, anything else = a trace
// file), --aggregate max|wsum (family only), plus --workload/--seed/
// --max-events/--threads/--budget.
// ---------------------------------------------------------------------------

class RequestCli {
 public:
  /// @param default_workload  the case study a bare seed (--seed, or a
  ///        digits-only --family element) records; also the single-trace
  ///        default when no trace flags are given.
  explicit RequestCli(std::string default_workload = "drr");

  /// The request under construction.  Callers may pre-set defaults
  /// (num_threads, validate, ...) before parsing; finish() only fills the
  /// trace list and validates.
  DesignRequest request;

  /// When false, the trace-selection flags (--family, --aggregate,
  /// --workload, --seed, --max-events) are not recognized — for binaries
  /// whose trace is fixed in-process (quickstart).
  bool allow_trace_flags = true;

  enum class Arg : std::uint8_t {
    kConsumed,  ///< argv[*i] (and possibly its value) was consumed
    kNotMine,   ///< not a shared flag; caller handles or rejects it
    kError,     ///< a shared flag with a bad value; see error()
  };

  /// Examines argv[*i]; advances *i past a consumed separate value.
  [[nodiscard]] Arg consume(int argc, char** argv, int* i);

  /// Resolves the trace list (family elements or the single default
  /// trace) and validates the assembled request; false (see error()) on
  /// an inconsistent ask — the aggregate-without-family and
  /// one-trace-family errors the CLIs always raised.
  [[nodiscard]] bool finish();

  [[nodiscard]] const std::string& error() const { return error_; }

  /// Usage fragment naming the shared flags (trace flags included iff
  /// enabled), for the callers' usage messages.
  [[nodiscard]] std::string flags_help() const;

 private:
  std::string default_workload_;
  std::string family_list_;
  unsigned seed_ = 1;
  std::string error_;
};

}  // namespace dmm::api

#endif  // DMM_API_DESIGN_API_H
