#include "dmm/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace dmm::serve {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_to(const std::string& socket_path, std::string* why) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *why = "socket path must be 1 to " +
           std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" +
           socket_path + "'";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *why = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *why = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::send_frame(FrameType type, const std::string& payload,
                        std::string* why) {
  if (fd_ < 0) {
    *why = "not connected";
    return false;
  }
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *why = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::send_request(const api::DesignRequest& req, std::string* why) {
  return send_frame(FrameType::kRequest, api::serialize_request(req), why);
}

bool Client::send_cancel(std::string* why) {
  return send_frame(FrameType::kCancel, "", why);
}

bool Client::send_shutdown(std::string* why) {
  return send_frame(FrameType::kShutdown, "", why);
}

Client::Event Client::next(api::ProgressEvent* progress,
                           api::DesignReply* reply, std::string* error) {
  for (;;) {
    Frame frame;
    std::string why;
    const FrameReader::Status st = reader_.next(&frame, &why);
    if (st == FrameReader::Status::kError) {
      *error = "bad frame from server: " + why;
      return Event::kError;
    }
    if (st == FrameReader::Status::kFrame) {
      switch (frame.type) {
        case FrameType::kProgress:
          if (!api::parse_progress(frame.payload, progress, &why)) {
            *error = "bad progress payload: " + why;
            return Event::kError;
          }
          return Event::kProgress;
        case FrameType::kReply:
          if (!api::parse_reply(frame.payload, reply, &why)) {
            *error = "bad reply payload: " + why;
            return Event::kError;
          }
          return Event::kReply;
        case FrameType::kError:
          *error = frame.payload;
          return Event::kError;
        default:
          // A frame type this client does not know: skip it — the frames
          // we care about are still well delimited.
          continue;
      }
    }
    // kNeedMore: block for bytes.
    if (fd_ < 0) {
      *error = "not connected";
      return Event::kError;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      reader_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      if (reader_.pending_bytes() > 0) {
        *error = "connection closed mid-frame";
        return Event::kError;
      }
      return Event::kClosed;
    }
    *error = std::string("recv: ") + std::strerror(errno);
    return Event::kError;
  }
}

}  // namespace dmm::serve
