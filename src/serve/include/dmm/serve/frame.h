#ifndef DMM_SERVE_FRAME_H
#define DMM_SERVE_FRAME_H

// The dmm_serve wire framing: length-prefixed, checksummed frames carrying
// the api-layer text payloads (design_api.h) over a byte stream.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "DMMF"
//        4     4  frame-format version (kFrameVersion)
//        8     4  frame type (FrameType)
//       12     4  payload length in bytes (<= kMaxFramePayload)
//       16     n  payload (the serialized request/reply/progress text)
//     16+n     8  FNV-1a 64 checksum over header + payload
//
// Untrusted-input discipline, same as the cache snapshot: the reader
// validates magic, version, length bound, and checksum before a frame is
// surfaced, and a stream that fails any check is *poisoned* — framing can
// no longer be trusted, so the connection must be dropped after the error
// is reported.  A well-framed payload that fails to parse is the payload
// layer's problem (a per-request error reply), never the reader's.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dmm::serve {

/// What a frame carries.  Client-to-server: kRequest / kCancel /
/// kShutdown.  Server-to-client: kProgress / kReply / kError.  The value
/// is validated by the *consumer* (an unknown type is a per-request error
/// reply, not a framing error), so newer peers can add types without
/// poisoning older streams.
enum class FrameType : std::uint32_t {
  kRequest = 1,
  kCancel = 2,
  kShutdown = 3,
  kProgress = 4,
  kReply = 5,
  kError = 6,
};

inline constexpr char kFrameMagic[4] = {'D', 'M', 'M', 'F'};
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kFrameChecksumBytes = 8;
/// Largest accepted payload: a crafted length field must never make the
/// reader buffer gigabytes waiting for a frame that can't be real.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// One decoded frame.  `type` is the raw wire value re-expressed as the
/// enum; values outside the known set are preserved for the consumer to
/// reject at its own layer.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Encodes one frame (header + payload + checksum), ready to write to the
/// socket.  @p payload must be within kMaxFramePayload (asserted).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::string& payload);

/// Incremental frame decoder over an untrusted byte stream.  feed() bytes
/// as they arrive; next() surfaces complete, validated frames one at a
/// time.  After the first framing error the reader is poisoned: every
/// further next() reports the same error, and the owner should close the
/// connection.
class FrameReader {
 public:
  enum class Status : std::uint8_t {
    kFrame,     ///< *out holds the next validated frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< framing violated; *why says how, reader is poisoned
  };

  void feed(const std::uint8_t* data, std::size_t n);

  /// Decodes the next frame from the buffered bytes.
  [[nodiscard]] Status next(Frame* out, std::string* why);

  /// Bytes buffered but not yet consumed by a complete frame — non-zero
  /// at connection EOF means the peer sent a truncated frame.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

  [[nodiscard]] bool poisoned() const { return poisoned_; }

 private:
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace dmm::serve

#endif  // DMM_SERVE_FRAME_H
