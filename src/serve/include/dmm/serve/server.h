#ifndef DMM_SERVE_SERVER_H
#define DMM_SERVE_SERVER_H

// dmm_serve: the design-as-a-service daemon.  One process multiplexes any
// number of design requests over one warm SharedScoreCache and one
// EvalEngine, speaking the frame protocol of frame.h with api-layer
// payloads (design_api.h) over a Unix-domain socket.
//
// Scheduling model — the PortfolioSearch slice scheduler, lifted from
// racing child strategies to racing client requests: every request runs as
// the same resumable search structure design_manager()/
// design_manager_family() execute (per-phase walks, optional exhaustive
// validation pass), dealt round-robin in step() slices of
// ServeOptions::slice_evals evaluations.  Consequences:
//
//   * results are bit-identical to the in-process library path — a
//     request's search sees the same job stream design_manager would
//     submit, and search outcomes never depend on cache scope or
//     scheduling (only the simulations/cache-hits split does);
//   * fairness is at slice granularity for the resumable strategies
//     (exhaustive / random / anneal / portfolio children); the ordered
//     walks (greedy, beam) are indivisible and complete a whole phase in
//     one turn, as they do inside PortfolioSearch;
//   * cancellation is cooperative: a kCancel frame marks the session and
//     takes effect at its next turn — the request's remaining budget is
//     freed, every other session is untouched;
//   * a request's eval_budget bounds the slices it is dealt; when it runs
//     out mid-search the reply is `ok = false` with budget_exhausted set.
//
// The scheduler runs on ONE thread (the event loop): the parallelism knob
// is the evaluation engine underneath (ServeOptions::num_threads), exactly
// as in the library path.
//
// Untrusted input: a malformed *frame* poisons only its connection (error
// frame, then close); a well-framed but bad *payload* earns a per-request
// error reply and the connection stays usable.  The daemon never dies on
// client input.

#include <functional>
#include <memory>
#include <string>

#include "dmm/core/eval_engine.h"

namespace dmm::serve {

struct ServeOptions {
  /// Filesystem path of the Unix-domain listening socket.  An existing
  /// file at this path is replaced (the daemon owns its socket).
  std::string socket_path;
  /// Snapshot persistence: loaded (best effort) at start(), saved on
  /// graceful shutdown.  Empty = no persistence.
  std::string cache_file;
  /// Growth bound of the daemon's shared score cache (0 = unbounded).
  core::SharedScoreCache::Limits cache_limits{};
  /// Evaluation-engine workers (ExplorerOptions::num_threads semantics:
  /// 1 = serial, 0 = one per hardware thread).
  unsigned num_threads = 1;
  /// Evaluations dealt to one session per scheduler turn.
  std::size_t slice_evals = 64;
  /// Polled between turns; return true to shut down gracefully (signal
  /// handlers set a flag this reads).  Optional.
  std::function<bool()> should_stop;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the socket (and loads the cache snapshot, when
  /// configured).  False with @p why on setup failure.
  [[nodiscard]] bool start(std::string* why);

  /// The event loop: accepts connections, schedules sessions, streams
  /// progress, until a kShutdown frame arrives or should_stop() /
  /// request_stop() fires.  Returns 0 on a clean exit (in-flight sessions
  /// answered with an error reply, snapshot saved); non-zero only when
  /// start() was never called successfully.
  int run();

  /// Thread-safe shutdown trigger (equivalent to should_stop returning
  /// true) — for embedding the server in tests.
  void request_stop();

  /// The daemon's shared score cache (inspection / tests).
  [[nodiscard]] const core::SharedScoreCache& cache() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dmm::serve

#endif  // DMM_SERVE_SERVER_H
