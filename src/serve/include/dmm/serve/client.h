#ifndef DMM_SERVE_CLIENT_H
#define DMM_SERVE_CLIENT_H

// Blocking client of a dmm_serve daemon: connect, send a DesignRequest,
// then read the stream of progress beats until the reply lands.  One
// connection carries one request at a time (the daemon rejects overlap
// per connection); cancel and shutdown are one-frame asks.
//
//   Client client;
//   client.connect_to(path, &why);
//   client.send_request(req, &why);
//   for (;;) {
//     switch (client.next(&progress, &reply, &err)) {
//       case Client::Event::kProgress: ...; break;
//       case Client::Event::kReply:    ...; goto done;   // ok or not
//       case Client::Event::kError:    ...; goto done;   // stream dead
//       case Client::Event::kClosed:   ...; goto done;
//     }
//   }

#include <string>

#include "dmm/api/design_api.h"
#include "dmm/serve/frame.h"

namespace dmm::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connect_to(const std::string& socket_path,
                                std::string* why);

  [[nodiscard]] bool send_request(const api::DesignRequest& req,
                                  std::string* why);
  [[nodiscard]] bool send_cancel(std::string* why);
  [[nodiscard]] bool send_shutdown(std::string* why);

  enum class Event : std::uint8_t {
    kProgress,  ///< *progress filled
    kReply,     ///< *reply filled (inspect reply.ok)
    kError,     ///< *error filled: server error frame, or framing/parse
                ///< failure on our side — the stream is no longer usable
    kClosed,    ///< the daemon closed the connection
  };

  /// Blocks for the next server frame.
  [[nodiscard]] Event next(api::ProgressEvent* progress,
                           api::DesignReply* reply, std::string* error);

  void close();

 private:
  [[nodiscard]] bool send_frame(FrameType type, const std::string& payload,
                                std::string* why);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace dmm::serve

#endif  // DMM_SERVE_CLIENT_H
