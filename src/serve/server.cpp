#include "dmm/serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dmm/alloc/config.h"
#include "dmm/api/design_api.h"
#include "dmm/core/methodology.h"
#include "dmm/core/phase.h"
#include "dmm/core/search.h"
#include "dmm/serve/frame.h"

namespace dmm::serve {

namespace {

/// Poll timeout while no session is runnable — bounds how late a
/// should_stop()/request_stop() shutdown is noticed.
constexpr int kIdlePollMs = 200;

/// Progress frames are advisory: when a client falls this many unread
/// bytes behind, beats are dropped instead of buffered without bound.
/// Replies and errors always queue.
constexpr std::size_t kMaxOutbufBytes = 256 * 1024;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One in-flight request, run as the exact search sequence design_manager()
/// / design_manager_family() would execute — per-phase walks (empty phases
/// reuse defaults), optional exhaustive validation passes, one family-wide
/// search — but dealt in step() slices so requests interleave.  Search
/// outcomes are bit-identical to the library path: a request's job stream
/// does not depend on what other sessions run, only the simulations vs
/// cache-hits split does.
struct DesignSession {
  api::DesignRequest request;
  /// Stable home of the options every SearchContext of this session holds
  /// a reference to; shared_cache points at the daemon-wide cache.
  core::ExplorerOptions opts;
  std::vector<core::AllocTrace> traces;
  bool family = false;

  // Single-trace mode: the phase cursor (family mode runs one search).
  std::vector<core::AllocTrace> sub_traces;
  std::size_t phase_index = 0;
  bool in_validation = false;

  // The open search, when one is running.
  std::unique_ptr<core::SearchContext> ctx;
  std::unique_ptr<core::SearchStrategy> strategy;
  bool done = false;

  api::DesignReply reply;        ///< accumulated across finished searches
  std::uint64_t acc_evals = 0;   ///< evaluations charged by finished searches
  bool cancelled = false;        ///< kCancel seen; honoured at next turn
};

}  // namespace

struct Server::Impl {
  ServeOptions options;
  std::shared_ptr<core::SharedScoreCache> cache;
  std::unique_ptr<core::EvalEngine> engine;
  int listen_fd = -1;
  bool started = false;
  std::atomic<bool> stop_flag{false};
  bool shutdown_frame = false;

  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    bool close_after_flush = false;
    std::unique_ptr<DesignSession> session;
  };
  std::vector<std::unique_ptr<Connection>> conns;

  explicit Impl(ServeOptions o)
      : options(std::move(o)),
        cache(std::make_shared<core::SharedScoreCache>(options.cache_limits)),
        engine(core::make_engine(options.num_threads)) {}

  ~Impl() {
    for (const std::unique_ptr<Connection>& c : conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
  }

  bool start(std::string* why) {
    sockaddr_un addr{};
    if (options.socket_path.empty() ||
        options.socket_path.size() >= sizeof(addr.sun_path)) {
      *why = "socket path must be 1 to " +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" +
             options.socket_path + "'";
      return false;
    }
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      *why = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (!set_nonblocking(listen_fd)) {
      *why = std::string("fcntl: ") + std::strerror(errno);
      return false;
    }
    // The daemon owns its socket path: a stale file from a previous run
    // must not block startup.
    ::unlink(options.socket_path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *why = "bind " + options.socket_path + ": " + std::strerror(errno);
      return false;
    }
    if (::listen(listen_fd, 16) != 0) {
      *why = std::string("listen: ") + std::strerror(errno);
      return false;
    }
    // Warm start, best effort: a missing or rejected snapshot is a cold
    // cache, never a startup failure.
    if (!options.cache_file.empty()) (void)cache->load(options.cache_file);
    started = true;
    return true;
  }

  // -- connection plumbing --------------------------------------------------

  void kill_connection(Connection& c) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    c.session.reset();
    c.outbuf.clear();
  }

  void flush(Connection& c) {
    while (c.fd >= 0 && !c.outbuf.empty()) {
      const ssize_t n =
          ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      kill_connection(c);  // peer gone; its session dies with it
      return;
    }
    if (c.fd >= 0 && c.outbuf.empty() && c.close_after_flush) {
      kill_connection(c);
    }
  }

  void queue_frame(Connection& c, FrameType type, const std::string& payload) {
    if (c.fd < 0) return;
    const std::vector<std::uint8_t> frame = encode_frame(type, payload);
    c.outbuf.append(reinterpret_cast<const char*>(frame.data()), frame.size());
    flush(c);
  }

  /// A well-framed but unusable ask: the reply says why, the connection
  /// stays open for the next request.
  void queue_error_reply(Connection& c, const std::string& error) {
    api::DesignReply reply;
    reply.error = error;
    queue_frame(c, FrameType::kReply, api::serialize_reply(reply));
  }

  void accept_connections() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or a transient error: retry next loop turn
      }
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      auto c = std::make_unique<Connection>();
      c->fd = fd;
      conns.push_back(std::move(c));
    }
  }

  // -- session lifecycle ----------------------------------------------------

  /// Opens the search of the next non-empty phase; empty phases reuse the
  /// defaults vector, exactly as design_manager() does.
  void open_next_phase(DesignSession& s) {
    s.ctx.reset();
    s.strategy.reset();
    while (s.phase_index < s.sub_traces.size() &&
           s.sub_traces[s.phase_index].empty()) {
      s.reply.phase_signatures.push_back(alloc::signature(s.opts.defaults));
      s.reply.phase_configs.push_back(s.opts.defaults);
      ++s.phase_index;
    }
    if (s.phase_index >= s.sub_traces.size()) {
      s.done = true;
      return;
    }
    const core::AllocTrace& sub = s.sub_traces[s.phase_index];
    s.ctx = std::make_unique<core::SearchContext>(sub, sub.fingerprint(),
                                                  s.opts, *engine);
    s.strategy = core::make_strategy(s.opts.search, core::paper_order(),
                                     core::high_impact_trees());
    s.strategy->reset();
    s.in_validation = false;
  }

  /// The per-phase ground-truth pass of MethodologyOptions::validate —
  /// the same exhaustive search design_manager() runs after each walk.
  void open_validation(DesignSession& s) {
    const core::AllocTrace& sub = s.sub_traces[s.phase_index];
    s.ctx = std::make_unique<core::SearchContext>(sub, sub.fingerprint(),
                                                  s.opts, *engine);
    s.strategy = std::make_unique<core::ExhaustiveSearch>(
        core::high_impact_trees(),
        core::MethodologyOptions{}.validation_max_evals);
    s.strategy->reset();
    s.in_validation = true;
  }

  /// Parses and admits one kRequest frame; returns the rejection reason
  /// ("" = admitted).  Rejections never disturb the connection.
  std::string begin_session(Connection& c, const std::string& payload) {
    if (c.session != nullptr) {
      return "a request is already in flight on this connection";
    }
    auto s = std::make_unique<DesignSession>();
    std::string why;
    if (!api::parse_request(payload, &s->request, &why)) return why;
    if (!s->request.cache_file.empty()) {
      return "cache-file is daemon-owned; remove it from the request";
    }
    if (!api::load_traces(s->request, &s->traces, &why)) return why;
    s->opts = api::to_explorer_options(s->request);
    if (s->opts.cache) s->opts.shared_cache = cache;
    s->family = s->traces.size() >= 2;
    s->reply.family = s->family;
    if (s->family) {
      std::vector<core::FamilyEvalMember> members;
      members.reserve(s->traces.size());
      for (std::size_t i = 0; i < s->traces.size(); ++i) {
        core::FamilyEvalMember m;
        // Aliasing, non-owning: s->traces outlives the context.
        m.trace = std::shared_ptr<const core::AllocTrace>(
            std::shared_ptr<const core::AllocTrace>(), &s->traces[i]);
        m.fingerprint = m.trace->fingerprint();
        m.weight = s->request.weights.empty() ? 1.0 : s->request.weights[i];
        members.push_back(std::move(m));
      }
      s->ctx = std::make_unique<core::SearchContext>(
          std::move(members), s->request.aggregate, s->opts, *engine);
      s->strategy = core::make_strategy(s->opts.search, core::paper_order(),
                                        core::high_impact_trees());
      s->strategy->reset();
    } else {
      s->reply.feasible = true;
      s->sub_traces = core::split_by_phase(s->traces[0]);
      open_next_phase(*s);
    }
    c.session = std::move(s);
    return "";
  }

  void fill_cache_state(api::DesignReply& reply) {
    reply.cache_entries = cache->size();
    reply.cache_evictions = cache->stats().evictions;
  }

  /// Harvests the open search's accounting mid-flight (cancellation,
  /// budget exhaustion, shutdown) so the reply reports the work done.
  void absorb_open_search(DesignSession& s) {
    if (s.ctx == nullptr) return;
    s.acc_evals += s.ctx->evaluations();
    const core::ExplorationResult r = s.ctx->finish();
    s.ctx.reset();
    s.strategy.reset();
    s.reply.simulations += r.simulations;
    s.reply.cache_hits += r.cache_hits;
    s.reply.cross_search_hits += r.cross_search_hits;
    s.reply.persisted_hits += r.persisted_hits;
  }

  void finalize_ok(Connection& c) {
    DesignSession& s = *c.session;
    s.reply.ok = true;
    s.reply.evaluations = s.reply.simulations + s.reply.cache_hits;
    fill_cache_state(s.reply);
    queue_frame(c, FrameType::kReply, api::serialize_reply(s.reply));
    c.session.reset();
  }

  void finalize_aborted(Connection& c, const std::string& error,
                        bool cancelled, bool budget_exhausted) {
    DesignSession& s = *c.session;
    absorb_open_search(s);
    s.reply.ok = false;
    s.reply.error = error;
    s.reply.cancelled = cancelled;
    s.reply.budget_exhausted = budget_exhausted;
    s.reply.evaluations = s.reply.simulations + s.reply.cache_hits;
    fill_cache_state(s.reply);
    queue_frame(c, FrameType::kReply, api::serialize_reply(s.reply));
    c.session.reset();
  }

  /// One finished search of the session: harvest it and open what follows
  /// (validation pass, next phase, or the reply).  Mirrors the harvesting
  /// run_design_request() does over design_manager's results.
  void finish_search(Connection& c) {
    DesignSession& s = *c.session;
    s.acc_evals += s.ctx->evaluations();
    const core::ExplorationResult r = s.ctx->finish();
    s.ctx.reset();
    s.strategy.reset();
    s.reply.simulations += r.simulations;
    s.reply.cache_hits += r.cache_hits;
    s.reply.cross_search_hits += r.cross_search_hits;
    s.reply.persisted_hits += r.persisted_hits;
    if (s.family) {
      s.reply.feasible = r.feasible;
      s.reply.phase_signatures.push_back(alloc::signature(r.best));
      s.reply.phase_configs.push_back(r.best);
      s.reply.best_peak = r.best_sim.peak_footprint;
      s.reply.aggregate_objective =
          core::candidate_objective(s.opts, r.best_sim, r.work_steps);
      s.done = true;
    } else if (!s.in_validation) {
      if (!r.feasible) s.reply.feasible = false;
      if (r.best_sim.peak_footprint > s.reply.best_peak) {
        s.reply.best_peak = r.best_sim.peak_footprint;
      }
      s.reply.phase_signatures.push_back(alloc::signature(r.best));
      s.reply.phase_configs.push_back(r.best);
      if (s.request.validate) {
        open_validation(s);
      } else {
        ++s.phase_index;
        open_next_phase(s);
      }
    } else {
      // Validation charges its accounting; the walk's outcome stands.
      ++s.phase_index;
      open_next_phase(s);
    }
    if (s.done) finalize_ok(c);
  }

  void queue_progress(Connection& c) {
    DesignSession& s = *c.session;
    if (c.outbuf.size() > kMaxOutbufBytes) return;  // lossy by design
    api::ProgressEvent ev;
    ev.phase = static_cast<std::uint32_t>(s.family ? 0 : s.phase_index);
    ev.phase_count =
        static_cast<std::uint32_t>(s.family ? 1 : s.sub_traces.size());
    ev.evaluations =
        s.acc_evals + (s.ctx != nullptr ? s.ctx->evaluations() : 0);
    ev.simulations = s.reply.simulations;
    ev.cache_hits = s.reply.cache_hits;
    if (s.ctx != nullptr) {
      const core::ExplorationResult& r = s.ctx->result();
      ev.simulations += r.simulations;
      ev.cache_hits += r.cache_hits;
      // evals_to_best is recorded when an offer displaces the incumbent;
      // ordered walks crown only at the end (within one turn anyway).
      if (r.evals_to_best > 0) {
        ev.has_incumbent = true;
        ev.incumbent_peak = r.best_sim.peak_footprint;
        ev.incumbent = alloc::signature(r.best);
      }
    }
    queue_frame(c, FrameType::kProgress, api::serialize_progress(ev));
  }

  /// One scheduler turn: honour a pending cancel, meter the budget, deal
  /// one step() slice, stream a progress beat.
  void session_turn(Connection& c) {
    DesignSession& s = *c.session;
    if (s.cancelled) {
      finalize_aborted(c, "cancelled by client", true, false);
      return;
    }
    std::size_t slice = options.slice_evals == 0 ? 64 : options.slice_evals;
    if (s.request.eval_budget > 0) {
      const std::uint64_t charged =
          s.acc_evals + (s.ctx != nullptr ? s.ctx->evaluations() : 0);
      if (charged >= s.request.eval_budget) {
        finalize_aborted(c, "evaluation budget exhausted", false, true);
        return;
      }
      const std::uint64_t left = s.request.eval_budget - charged;
      if (left < slice) slice = static_cast<std::size_t>(left);
    }
    const bool more = s.strategy->step(*s.ctx, slice);
    queue_progress(c);
    if (!more) finish_search(c);
  }

  // -- frame dispatch -------------------------------------------------------

  void handle_frame(Connection& c, const Frame& f) {
    switch (f.type) {
      case FrameType::kRequest: {
        const std::string err = begin_session(c, f.payload);
        if (!err.empty()) queue_error_reply(c, err);
        break;
      }
      case FrameType::kCancel:
        if (c.session != nullptr) {
          c.session->cancelled = true;
        } else {
          queue_error_reply(c, "no request in flight to cancel");
        }
        break;
      case FrameType::kShutdown:
        shutdown_frame = true;
        break;
      default:
        // Unknown types are a consumer-level error: reply and carry on,
        // so a newer client's extra frames never poison the stream.
        queue_error_reply(
            c, "unknown frame type " +
                   std::to_string(static_cast<std::uint32_t>(f.type)));
        break;
    }
  }

  void read_input(Connection& c) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.reader.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or a hard error: the peer is gone.  A truncated frame at EOF
      // needs no reply — nobody is left to read one — and an abandoned
      // session dies with its connection, freeing its budget.
      kill_connection(c);
      return;
    }
    for (;;) {
      Frame f;
      std::string why;
      const FrameReader::Status st = c.reader.next(&f, &why);
      if (st == FrameReader::Status::kNeedMore) break;
      if (st == FrameReader::Status::kError) {
        // Framing is untrustworthy from here on: say why, then drop the
        // connection — but only this connection.
        queue_frame(c, FrameType::kError, why);
        c.close_after_flush = true;
        flush(c);
        break;
      }
      handle_frame(c, f);
      if (c.fd < 0 || c.close_after_flush) break;
    }
  }

  // -- the event loop -------------------------------------------------------

  bool should_shutdown() {
    return shutdown_frame || stop_flag.load(std::memory_order_relaxed) ||
           (options.should_stop && options.should_stop());
  }

  void shutdown_now() {
    for (const std::unique_ptr<Connection>& c : conns) {
      if (c->fd < 0) continue;
      if (c->session != nullptr) {
        finalize_aborted(*c, "daemon shutting down", false, false);
      }
      flush(*c);
      kill_connection(*c);
    }
    conns.clear();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    ::unlink(options.socket_path.c_str());
    // The graceful exit persists everything every session replayed.
    if (!options.cache_file.empty()) (void)cache->save(options.cache_file);
  }

  int run() {
    if (!started) return 1;
    std::vector<pollfd> fds;
    while (!should_shutdown()) {
      fds.clear();
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      bool any_session = false;
      for (const std::unique_ptr<Connection>& c : conns) {
        short ev = POLLIN;
        if (!c->outbuf.empty()) ev = static_cast<short>(ev | POLLOUT);
        fds.push_back(pollfd{c->fd, ev, 0});
        if (c->session != nullptr) any_session = true;
      }
      // With runnable sessions the loop must not block — poll is only a
      // readiness snapshot between scheduler rounds.
      const int timeout = any_session ? 0 : kIdlePollMs;
      const std::size_t polled = conns.size();
      const int rc =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;  // unrecoverable poll failure: shut down cleanly
      }
      if ((fds[0].revents & POLLIN) != 0) accept_connections();
      for (std::size_t i = 0; i < polled; ++i) {
        Connection& c = *conns[i];
        if (c.fd < 0) continue;
        const short re = fds[i + 1].revents;
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) read_input(c);
        if (c.fd >= 0 && (re & POLLOUT) != 0) flush(c);
      }
      // The scheduler: one slice per session per loop turn — round-robin
      // fairness at slice granularity, the PortfolioSearch deal.
      for (const std::unique_ptr<Connection>& c : conns) {
        if (should_shutdown()) break;
        if (c->fd >= 0 && c->session != nullptr) session_turn(*c);
      }
      std::erase_if(conns, [](const std::unique_ptr<Connection>& c) {
        return c->fd < 0;
      });
    }
    shutdown_now();
    return 0;
  }
};

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

bool Server::start(std::string* why) { return impl_->start(why); }

int Server::run() { return impl_->run(); }

void Server::request_stop() {
  impl_->stop_flag.store(true, std::memory_order_relaxed);
}

const core::SharedScoreCache& Server::cache() const { return *impl_->cache; }

}  // namespace dmm::serve
