#include "dmm/serve/frame.h"

#include <cassert>
#include <cstring>

#include "dmm/core/cache_snapshot.h"

namespace dmm::serve {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::string& payload) {
  assert(payload.size() <= kMaxFramePayload &&
         "frame payload exceeds kMaxFramePayload");
  std::vector<std::uint8_t> buf(kFrameHeaderBytes + payload.size() +
                                kFrameChecksumBytes);
  std::memcpy(buf.data(), kFrameMagic, sizeof(kFrameMagic));
  put_u32(buf.data() + 4, kFrameVersion);
  put_u32(buf.data() + 8, static_cast<std::uint32_t>(type));
  put_u32(buf.data() + 12, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(buf.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  const std::size_t body = kFrameHeaderBytes + payload.size();
  put_u64(buf.data() + body, core::snapshot_checksum(buf.data(), body));
  return buf;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // the stream is already condemned
  buf_.insert(buf_.end(), data, data + n);
}

FrameReader::Status FrameReader::next(Frame* out, std::string* why) {
  if (poisoned_) {
    *why = poison_reason_;
    return Status::kError;
  }
  if (buf_.size() < kFrameHeaderBytes) return Status::kNeedMore;
  // Validate the header before trusting the length field: a garbage
  // stream must fail here, not make us wait for bytes that never come.
  const auto poison = [&](const std::string& reason) {
    poisoned_ = true;
    poison_reason_ = reason;
    *why = reason;
    return Status::kError;
  };
  if (std::memcmp(buf_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return poison("bad frame magic");
  }
  const std::uint32_t version = get_u32(buf_.data() + 4);
  if (version != kFrameVersion) {
    return poison("unsupported frame version " + std::to_string(version));
  }
  const std::uint32_t type = get_u32(buf_.data() + 8);
  const std::uint32_t length = get_u32(buf_.data() + 12);
  if (length > kMaxFramePayload) {
    return poison("oversized frame: " + std::to_string(length) +
                  " payload bytes");
  }
  const std::size_t total =
      kFrameHeaderBytes + length + kFrameChecksumBytes;
  if (buf_.size() < total) return Status::kNeedMore;
  const std::uint64_t stored =
      get_u64(buf_.data() + kFrameHeaderBytes + length);
  if (core::snapshot_checksum(buf_.data(), kFrameHeaderBytes + length) !=
      stored) {
    return poison("frame checksum mismatch");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(
      reinterpret_cast<const char*>(buf_.data() + kFrameHeaderBytes), length);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return Status::kFrame;
}

}  // namespace dmm::serve
