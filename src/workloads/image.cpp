#include "dmm/workloads/image.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>

namespace dmm::workloads {

SyntheticImage::SyntheticImage(alloc::Allocator& manager, int width,
                               int height, unsigned seed, int blobs)
    : manager_(&manager),
      width_(width),
      height_(height),
      blobs_(blobs),
      scene_seed_(seed) {
  data_ = static_cast<std::uint8_t*>(manager_->allocate(
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_)));
  render(seed, 0, 0);
}

SyntheticImage::~SyntheticImage() { manager_->deallocate(data_); }

void SyntheticImage::redraw_displaced(unsigned seed, int dx, int dy) {
  render(seed, dx, dy);
}

void SyntheticImage::render(unsigned noise_seed, int dx, int dy) {
  std::mt19937 scene_rng(scene_seed_);
  std::mt19937 noise_rng(noise_seed * 7919u + 13u);
  std::uniform_int_distribution<int> noise(-6, 6);
  // Noisy mid-gray background.
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
       ++i) {
    data_[i] = static_cast<std::uint8_t>(
        std::clamp(128 + noise(noise_rng), 0, 255));
  }
  // Rectangles with sharp edges (corners!) at seed-dependent positions.
  std::uniform_int_distribution<int> px(0, width_ - 1);
  std::uniform_int_distribution<int> py(0, height_ - 1);
  std::uniform_int_distribution<int> ps(8, 80);
  std::uniform_int_distribution<int> pi(0, 255);
  for (int b = 0; b < blobs_; ++b) {
    const int x0 = px(scene_rng) + dx;
    const int y0 = py(scene_rng) + dy;
    const int w = ps(scene_rng);
    const int h = ps(scene_rng);
    const auto value = static_cast<std::uint8_t>(pi(scene_rng));
    for (int y = std::max(0, y0); y < std::min(height_, y0 + h); ++y) {
      for (int x = std::max(0, x0); x < std::min(width_, x0 + w); ++x) {
        const int v = value + noise(noise_rng);
        data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(x)] =
            static_cast<std::uint8_t>(std::clamp(v, 0, 255));
      }
    }
  }
}

ManagedVector<Corner> detect_corners(alloc::Allocator& manager,
                                     const SyntheticImage& image,
                                     float threshold) {
  const int w = image.width();
  const int h = image.height();
  const std::size_t plane = static_cast<std::size_t>(w) *
                            static_cast<std::size_t>(h);
  // Float gradient planes: the ">1 MB per frame" scratch of the real
  // algorithm (640x480 x 4 B = 1.2 MB each).
  auto* ix =
      static_cast<float*>(manager.allocate(plane * sizeof(float)));
  auto* iy =
      static_cast<float*>(manager.allocate(plane * sizeof(float)));
  auto idx = [w](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x);
  };
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      ix[idx(x, y)] = static_cast<float>(
          static_cast<int>(image.at(x + 1, y)) - image.at(x - 1, y));
      iy[idx(x, y)] = static_cast<float>(
          static_cast<int>(image.at(x, y + 1)) - image.at(x, y - 1));
    }
  }

  ManagedVector<Corner> corners{alloc::StlAdaptor<Corner>(manager)};
  // Harris response over a 3x3 window, with 3x3 greedy non-max
  // suppression via a minimum corner spacing.
  const int step = 4;  // sparse grid: robust & fast, like real trackers
  for (int y = 4; y < h - 4; y += step) {
    for (int x = 4; x < w - 4; x += step) {
      float sxx = 0.0f;
      float syy = 0.0f;
      float sxy = 0.0f;
      for (int j = -1; j <= 1; ++j) {
        for (int i = -1; i <= 1; ++i) {
          const float gx = ix[idx(x + i, y + j)];
          const float gy = iy[idx(x + i, y + j)];
          sxx += gx * gx;
          syy += gy * gy;
          sxy += gx * gy;
        }
      }
      const float det = sxx * syy - sxy * sxy;
      const float trace = sxx + syy;
      const float response = det - 0.04f * trace * trace;
      if (response > threshold) {
        Corner c;
        c.x = static_cast<std::int16_t>(x);
        c.y = static_cast<std::int16_t>(y);
        c.response = response;
        // 8-byte descriptor: the ring of neighbours at radius 2.
        const int ring[8][2] = {{-2, -2}, {0, -2}, {2, -2}, {2, 0},
                                {2, 2},   {0, 2},  {-2, 2}, {-2, 0}};
        for (int k = 0; k < 8; ++k) {
          c.descriptor[k] = image.at(x + ring[k][0], y + ring[k][1]);
        }
        corners.push_back(c);
      }
    }
  }
  manager.deallocate(iy);
  manager.deallocate(ix);
  return corners;
}

}  // namespace dmm::workloads
