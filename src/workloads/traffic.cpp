#include "dmm/workloads/traffic.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace dmm::workloads {

namespace {

std::uint32_t draw_packet_size(std::mt19937& rng) {
  // Trimodal internet mix with jitter (see header).
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::uint32_t> jitter_small(0, 24);
  std::uniform_int_distribution<std::uint32_t> jitter_mid(0, 400);
  const double x = u(rng);
  if (x < 0.50) return 40 + jitter_small(rng);
  if (x < 0.70) return 576 + jitter_small(rng);
  if (x < 0.95) return 1500 - jitter_small(rng);
  return 100 + jitter_mid(rng) * 3;  // the long tail of odd sizes
}

double draw_pareto(std::mt19937& rng, double alpha, double mean) {
  // Pareto with unit minimum scaled so that E[X] = mean (alpha > 1).
  std::uniform_real_distribution<double> u(
      std::numeric_limits<double>::min(), 1.0);
  const double xm = mean * (alpha - 1.0) / alpha;
  return xm / std::pow(u(rng), 1.0 / alpha);
}

}  // namespace

std::vector<Packet> TrafficGenerator::generate(unsigned seed) const {
  std::mt19937 rng(seed * 2654435761u + 12345u);
  struct FlowState {
    std::uint64_t next_us = 0;    ///< next activity time
    std::uint32_t burst_left = 0; ///< packets left in the current burst
  };
  std::vector<FlowState> flows(cfg_.flows);
  std::uniform_int_distribution<std::uint64_t> start_jitter(0, 20000);
  for (FlowState& f : flows) f.next_us = start_jitter(rng);

  // Mean packet size of the mix is ~600 B.  During an ON period a flow
  // sends at `on_speedup` times its fair share; the OFF period is sized
  // so the long-run average rate matches link_mbps * load_factor exactly:
  //   cycle = N*g_on + N*g_on*(s-1)  =>  avg rate = 1 / (s * g_on).
  const double offered_bps = cfg_.link_mbps * 1e6 * cfg_.load_factor;
  const double mean_packet_bits = 600.0 * 8.0;
  const double aggregate_pps = offered_bps / mean_packet_bits;
  const double s = cfg_.on_speedup;
  const double per_flow_gap_us = 1e6 * cfg_.flows / aggregate_pps / s;
  const double idle_per_burst_packet_us = per_flow_gap_us * (s - 1.0);

  std::vector<Packet> trace;
  trace.reserve(cfg_.packets);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  while (trace.size() < cfg_.packets) {
    // Next event = flow with the earliest activity time.
    std::size_t fi = 0;
    for (std::size_t i = 1; i < flows.size(); ++i) {
      if (flows[i].next_us < flows[fi].next_us) fi = i;
    }
    FlowState& f = flows[fi];
    if (f.burst_left == 0) {
      // Start a new ON period; its length is Pareto (heavy-tailed).
      f.burst_left = static_cast<std::uint32_t>(std::max(
          1.0, draw_pareto(rng, cfg_.pareto_alpha, cfg_.mean_burst_packets)));
    }
    trace.push_back({f.next_us, draw_packet_size(rng),
                     static_cast<std::uint16_t>(fi)});
    --f.burst_left;
    if (f.burst_left == 0) {
      // OFF period: Pareto idle whose mean balances the ON speedup so the
      // long-run offered load matches the calibration.
      const double idle = draw_pareto(
          rng, cfg_.pareto_alpha,
          cfg_.mean_burst_packets * idle_per_burst_packet_us);
      f.next_us += static_cast<std::uint64_t>(idle);
    } else {
      const double gap = per_flow_gap_us * (0.5 + u(rng));
      f.next_us += static_cast<std::uint64_t>(std::max(1.0, gap));
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Packet& a, const Packet& b) {
              return a.arrival_us < b.arrival_us;
            });
  return trace;
}

double TrafficGenerator::size_share(const std::vector<Packet>& trace,
                                    std::uint32_t lo, std::uint32_t hi) {
  if (trace.empty()) return 0.0;
  std::size_t n = 0;
  for (const Packet& p : trace) {
    if (p.size >= lo && p.size <= hi) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(trace.size());
}

}  // namespace dmm::workloads
