#include "dmm/workloads/render3d.h"

#include <cmath>
#include <random>

namespace dmm::workloads {

namespace {
// Vertices added by refinement layer k: geometric growth, as in
// progressive-mesh level-of-detail schemes.
int layer_vertices(int base, int k) { return base << (k / 2); }
}  // namespace

int MeshRenderer::target_lod(const Object& obj, float vx, float vy,
                             float vz) const {
  const float dx = obj.ox - vx;
  const float dy = obj.oy - vy;
  const float dz = obj.oz - vz;
  const float dist = std::sqrt(dx * dx + dy * dy + dz * dz);
  // Nearer objects get more refinement layers (QoS rule).
  const float t = 1.0f - std::min(dist / 200.0f, 1.0f);
  return static_cast<int>(t * static_cast<float>(cfg_.max_lod) + 0.5f);
}

RenderResult MeshRenderer::run(unsigned seed) {
  RenderResult result;
  std::mt19937 rng(seed * 69069u + 7u);
  std::uniform_real_distribution<float> coord(-100.0f, 100.0f);

  manager_->set_phase(0);  // frame loop: the stack-like phase

  // Scene setup: base meshes.
  std::vector<Object> objects(static_cast<std::size_t>(cfg_.objects));
  for (Object& o : objects) {
    o.ox = coord(rng);
    o.oy = coord(rng);
    o.oz = coord(rng);
    o.base = static_cast<Vertex*>(manager_->allocate(
        sizeof(Vertex) * static_cast<std::size_t>(cfg_.base_vertices)));
    for (int v = 0; v < cfg_.base_vertices; ++v) {
      o.base[v] = {o.ox + coord(rng) * 0.05f, o.oy + coord(rng) * 0.05f,
                   o.oz + coord(rng) * 0.05f};
    }
  }

  // Viewer orbit.
  for (int frame = 0; frame < cfg_.frames; ++frame) {
    const float angle =
        static_cast<float>(frame) * 6.283f / static_cast<float>(cfg_.frames);
    const float vx = 120.0f * std::cos(angle * 2.0f);
    const float vy = 40.0f * std::sin(angle * 3.0f);
    const float vz = 120.0f * std::sin(angle * 2.0f);

    // LOD adaptation: push/pop refinement layers per object.
    for (Object& o : objects) {
      const int target = target_lod(o, vx, vy, vz);
      // Texture streaming: fetched on the first close approach, kept for
      // the rest of the sequence (long-lived survivors interleaved with
      // the transient refinement data).
      if (target >= cfg_.max_lod / 2 && o.texture == nullptr) {
        o.texture =
            static_cast<std::byte*>(manager_->allocate(cfg_.texture_bytes));
        o.texture[0] = std::byte{0x42};
      }
      while (static_cast<int>(o.lod.size()) < target) {
        const int k = static_cast<int>(o.lod.size());
        const int count = layer_vertices(cfg_.base_vertices, k);
        auto* verts = static_cast<Vertex*>(manager_->allocate(
            sizeof(Vertex) * static_cast<std::size_t>(count)));
        for (int v = 0; v < count; ++v) {
          verts[v] = {o.ox + coord(rng) * 0.02f, o.oy + coord(rng) * 0.02f,
                      o.oz + coord(rng) * 0.02f};
        }
        o.lod.push_back({verts, count});
        ++result.layers_pushed;
      }
      while (static_cast<int>(o.lod.size()) > target) {
        manager_->deallocate(o.lod.back().vertices);  // LIFO pop
        o.lod.pop_back();
        ++result.layers_popped;
      }
    }

    // Render pass: one transform buffer per object (the per-object render
    // lists of the QoS renderer), freed in reverse order at frame end —
    // the stack-like behaviour Obstacks exploits.
    std::vector<Vertex*> render_lists;
    render_lists.reserve(objects.size());
    for (const Object& o : objects) {
      std::size_t active = static_cast<std::size_t>(cfg_.base_vertices);
      for (const Layer& l : o.lod) active += static_cast<std::size_t>(l.count);
      auto* list =
          static_cast<Vertex*>(manager_->allocate(sizeof(Vertex) * active));
      std::size_t out = 0;
      auto emit = [&](const Vertex& v) {
        list[out++] = {v.x - vx, v.y - vy, v.z - vz};
      };
      for (int v = 0; v < cfg_.base_vertices; ++v) emit(o.base[v]);
      for (const Layer& l : o.lod) {
        for (int v = 0; v < l.count; ++v) emit(l.vertices[v]);
      }
      result.vertices_transformed += out;
      result.checksum += list[out / 2].x;
      render_lists.push_back(list);
    }
    for (auto it = render_lists.rbegin(); it != render_lists.rend(); ++it) {
      manager_->deallocate(*it);
    }
    ++result.frames_rendered;
  }

  // Tear down the LOD stacks (receding viewer at sequence end).
  for (Object& o : objects) {
    while (!o.lod.empty()) {
      manager_->deallocate(o.lod.back().vertices);
      o.lod.pop_back();
      ++result.layers_popped;
    }
  }

  // ---- Phase 1: compositing — the non-stack final phase -----------------
  manager_->set_phase(1);
  std::vector<std::byte*> tiles(static_cast<std::size_t>(cfg_.screen_tiles),
                                nullptr);
  std::vector<std::byte*> held_overlays;
  std::uniform_int_distribution<int> pick(0, cfg_.screen_tiles - 1);
  std::uniform_int_distribution<std::uint32_t> overlay_size(512, 3072);
  for (int round = 0; round < cfg_.composite_rounds; ++round) {
    // Allocate all surface tiles of this pass...
    for (auto& tile : tiles) {
      if (tile == nullptr) {
        tile = static_cast<std::byte*>(manager_->allocate(cfg_.tile_bytes));
        tile[0] = std::byte{0xCC};
      }
    }
    // ...plus the sprite/overlay buffers blended onto them.  Overlays
    // retire in data-dependent order and every eighth one survives into
    // later passes — the out-of-order churn that defeats stack reclaim.
    std::vector<std::byte*> overlays;
    for (int i = 0; i < cfg_.overlays_per_round; ++i) {
      auto* overlay =
          static_cast<std::byte*>(manager_->allocate(overlay_size(rng)));
      overlay[0] = std::byte{0xEE};
      overlays.push_back(overlay);
    }
    for (int i = 0; i < static_cast<int>(overlays.size()); ++i) {
      std::swap(overlays[static_cast<std::size_t>(i)],
                overlays[rng() % overlays.size()]);
    }
    for (std::size_t i = 0; i < overlays.size(); ++i) {
      if (i % 8 == 0 && round + 1 < cfg_.composite_rounds) {
        held_overlays.push_back(overlays[i]);
      } else {
        manager_->deallocate(overlays[i]);
      }
    }
    // Tiles retire shuffled too, an eighth carried into the next pass.
    for (int i = 0; i < cfg_.screen_tiles; ++i) {
      const int a = pick(rng);
      const int b = pick(rng);
      std::swap(tiles[static_cast<std::size_t>(a)],
                tiles[static_cast<std::size_t>(b)]);
    }
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      const bool keep = (rng() % 8 == 0) && round + 1 < cfg_.composite_rounds;
      if (!keep && tiles[i] != nullptr) {
        manager_->deallocate(tiles[i]);
        tiles[i] = nullptr;
        ++result.tiles_composited;
      }
    }
  }
  for (std::byte* overlay : held_overlays) manager_->deallocate(overlay);
  for (auto& tile : tiles) {
    if (tile != nullptr) {
      manager_->deallocate(tile);
      tile = nullptr;
      ++result.tiles_composited;
    }
  }

  // Scene teardown.
  for (Object& o : objects) {
    if (o.texture != nullptr) manager_->deallocate(o.texture);
    manager_->deallocate(o.base);
  }
  return result;
}

}  // namespace dmm::workloads
