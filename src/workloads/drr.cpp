#include "dmm/workloads/drr.h"

#include <cstring>

namespace dmm::workloads {

DrrScheduler::DrrScheduler(alloc::Allocator& manager, std::uint16_t flows,
                           DrrConfig cfg)
    : manager_(&manager), cfg_(cfg), queues_(flows) {
  stats_.per_flow_bytes.assign(flows, 0);
  ring_.reserve(flows);
}

DrrScheduler::~DrrScheduler() {
  // Drain every queue so the manager ends clean.
  for (Queue& q : queues_) {
    Node* n = q.head;
    while (n != nullptr) {
      Node* next = n->next;
      manager_->deallocate(n->payload);
      manager_->deallocate(n);
      n = next;
    }
    q.head = q.tail = nullptr;
  }
}

void DrrScheduler::activate(std::uint16_t flow) {
  Queue& q = queues_[flow];
  if (!q.active) {
    q.active = true;
    ring_.push_back(flow);
  }
}

bool DrrScheduler::enqueue(const Packet& packet) {
  Queue& q = queues_[packet.flow];
  if (q.packets >= cfg_.max_queue_packets) {
    ++stats_.dropped_packets;
    return false;
  }
  // Payload buffer first (the actual packet bytes), then the queue node.
  auto* payload =
      static_cast<std::byte*>(manager_->allocate(packet.size));
  if (payload == nullptr) {
    ++stats_.dropped_packets;
    return false;
  }
  auto* node = static_cast<Node*>(manager_->allocate(sizeof(Node)));
  if (node == nullptr) {
    manager_->deallocate(payload);
    ++stats_.dropped_packets;
    return false;
  }
  // Touch the payload like a real forwarding path would (header rewrite).
  std::memset(payload, static_cast<int>(packet.size & 0xFF),
              packet.size < 64 ? packet.size : 64);
  node->next = nullptr;
  node->payload = payload;
  node->size = packet.size;
  if (q.tail != nullptr) {
    q.tail->next = node;
  } else {
    q.head = node;
  }
  q.tail = node;
  ++q.packets;
  ++queued_packets_;
  queued_bytes_ += packet.size;
  if (queued_bytes_ > stats_.peak_queued_bytes) {
    stats_.peak_queued_bytes = queued_bytes_;
  }
  if (queued_packets_ > stats_.peak_queued_packets) {
    stats_.peak_queued_packets = queued_packets_;
  }
  activate(packet.flow);
  return true;
}

void DrrScheduler::drop_or_free_node(Node* node) {
  manager_->deallocate(node->payload);
  manager_->deallocate(node);
}

void DrrScheduler::serve_bytes(std::uint64_t budget) {
  while (budget > 0 && !ring_.empty()) {
    if (ring_pos_ >= ring_.size()) ring_pos_ = 0;
    const std::uint16_t flow = ring_[ring_pos_];
    Queue& q = queues_[flow];
    if (resume_mid_visit_) {
      // This visit already received its quantum before the link budget
      // ran out; do not credit it twice.
      resume_mid_visit_ = false;
    } else {
      q.deficit += cfg_.quantum;
    }
    // Serve head packets while the deficit and the link budget allow.
    while (q.head != nullptr && q.head->size <= q.deficit &&
           q.head->size <= budget) {
      Node* node = q.head;
      q.head = node->next;
      if (q.head == nullptr) q.tail = nullptr;
      q.deficit -= node->size;
      budget -= node->size;
      --q.packets;
      --queued_packets_;
      queued_bytes_ -= node->size;
      ++stats_.forwarded_packets;
      stats_.forwarded_bytes += node->size;
      stats_.per_flow_bytes[flow] += node->size;
      drop_or_free_node(node);
    }
    if (q.head == nullptr) {
      // Queue emptied: leaves the ring and loses its deficit (DRR rule).
      q.deficit = 0;
      q.active = false;
      ring_.erase(ring_.begin() + static_cast<long>(ring_pos_));
      // ring_pos_ now points at the next queue already.
    } else if (q.head->size <= q.deficit) {
      // Eligible packet, but the link budget cannot carry it: it occupies
      // the wire into the next service period.  Resume here, without a
      // second quantum.
      resume_mid_visit_ = true;
      break;
    } else {
      ++ring_pos_;  // deficit too small: next queue
    }
  }
}

void DrrScheduler::run(const std::vector<Packet>& arrivals) {
  std::uint64_t last_us = arrivals.empty() ? 0 : arrivals.front().arrival_us;
  const double bits_per_us = cfg_.link_mbps;
  for (const Packet& p : arrivals) {
    // Link service between the previous arrival and this one.
    const std::uint64_t elapsed = p.arrival_us - last_us;
    last_us = p.arrival_us;
    service_deficit_bits_ +=
        static_cast<std::uint64_t>(static_cast<double>(elapsed) *
                                   bits_per_us);
    const std::uint64_t budget_bytes = service_deficit_bits_ / 8;
    if (budget_bytes > 0) {
      serve_bytes(budget_bytes);
      service_deficit_bits_ -= budget_bytes * 8;
    }
    enqueue(p);
  }
  // Drain: keep serving until all queues empty.
  while (queued_packets_ > 0) {
    serve_bytes(64 * 1024);
  }
}

}  // namespace dmm::workloads
