#include "dmm/workloads/recon3d.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>

namespace dmm::workloads {

ReconResult Recon3d::run(unsigned seed) {
  ReconResult result;
  std::mt19937 rng(seed * 40503u + 271u);
  std::uniform_int_distribution<int> shift(-12, 12);
  for (int pair = 0; pair < cfg_.pairs; ++pair) {
    const unsigned scene = seed * 131u + static_cast<unsigned>(pair);
    const int dx = shift(rng);
    const int dy = shift(rng);

    // Frame A and displaced frame B (the >1 MB dynamic objects).
    SyntheticImage a(*manager_, cfg_.width, cfg_.height, scene, cfg_.blobs);
    SyntheticImage b(*manager_, cfg_.width, cfg_.height, scene, cfg_.blobs);
    b.redraw_displaced(scene + 999u, dx, dy);

    ManagedVector<Corner> ca = detect_corners(*manager_, a);
    ManagedVector<Corner> cb = detect_corners(*manager_, b);
    result.corners_total += ca.size() + cb.size();

    // Spatial hash of B's corners so candidate search touches the image
    // data in a randomized order (the paper: row-major optimisations do
    // not apply here).
    const int cell = cfg_.search_radius;
    std::unordered_map<int, ManagedVector<int>> grid;
    for (std::size_t i = 0; i < cb.size(); ++i) {
      const int key = (cb[i].x / cell) * 4096 + (cb[i].y / cell);
      auto it = grid.find(key);
      if (it == grid.end()) {
        it = grid.emplace(key, ManagedVector<int>{
                                   alloc::StlAdaptor<int>(*manager_)})
                 .first;
      }
      it->second.push_back(static_cast<int>(i));
    }

    // Candidate lists per corner of A: dynamically sized, data dependent.
    ManagedVector<Match> matches{alloc::StlAdaptor<Match>(*manager_)};
    for (const Corner& c : ca) {
      ManagedVector<int> candidates{alloc::StlAdaptor<int>(*manager_)};
      for (int gx = c.x / cell - 1; gx <= c.x / cell + 1; ++gx) {
        for (int gy = c.y / cell - 1; gy <= c.y / cell + 1; ++gy) {
          auto it = grid.find(gx * 4096 + gy);
          if (it == grid.end()) continue;
          for (int bi : it->second) {
            const Corner& d = cb[static_cast<std::size_t>(bi)];
            if (std::abs(d.x - c.x) <= cfg_.search_radius &&
                std::abs(d.y - c.y) <= cfg_.search_radius) {
              candidates.push_back(bi);
            }
          }
        }
      }
      result.candidates_total += candidates.size();
      // Best descriptor match within the window.
      int best = -1;
      int best_dist = cfg_.descriptor_limit;
      for (int bi : candidates) {
        const Corner& d = cb[static_cast<std::size_t>(bi)];
        int dist = 0;
        for (int k = 0; k < 8; ++k) {
          dist += std::abs(static_cast<int>(c.descriptor[k]) -
                           static_cast<int>(d.descriptor[k]));
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = bi;
        }
      }
      if (best >= 0) {
        const Corner& d = cb[static_cast<std::size_t>(best)];
        matches.push_back({c.x, c.y, d.x, d.y, best_dist});
      }
    }

    // Patch verification: extract a pixel patch around both ends of every
    // tentative match and keep the pairs until the pair is finished (the
    // correlation-verification stage of the real pipeline).  This stage
    // runs *after* the gradient planes are gone — a manager that recycles
    // the planes' memory here wins; one that holds per-size regions pays.
    constexpr int kPatch = 32;
    ManagedVector<std::byte*> patches{
        alloc::StlAdaptor<std::byte*>(*manager_)};
    auto extract = [&](const SyntheticImage& img, int cx, int cy) {
      auto* patch = static_cast<std::byte*>(
          manager_->allocate(kPatch * kPatch));
      for (int j = 0; j < kPatch; ++j) {
        for (int i = 0; i < kPatch; ++i) {
          const int x = std::clamp(cx + i - kPatch / 2, 0, cfg_.width - 1);
          const int y = std::clamp(cy + j - kPatch / 2, 0, cfg_.height - 1);
          patch[j * kPatch + i] = static_cast<std::byte>(img.at(x, y));
        }
      }
      patches.push_back(patch);
      return patch;
    };
    std::uint64_t ssd_accum = 0;
    for (const Match& m : matches) {
      const std::byte* pa = extract(a, m.ax, m.ay);
      const std::byte* pb = extract(b, m.bx, m.by);
      for (int k = 0; k < kPatch * kPatch; ++k) {
        const int d = static_cast<int>(pa[k]) - static_cast<int>(pb[k]);
        ssd_accum += static_cast<std::uint64_t>(d * d);
      }
    }
    (void)ssd_accum;

    // Displacement voting.
    std::unordered_map<int, int> votes;
    for (const Match& m : matches) {
      votes[(m.bx - m.ax + 64) * 256 + (m.by - m.ay + 64)] += 1;
    }
    int best_key = 0;
    int best_votes = 0;
    // Argmax ties break on hash-map iteration order (reproducible for a
    // fixed insertion sequence); a key tie-break would be cleaner but
    // changes the generated traces, which the golden logs pin bit-for-bit.
    // dmm-lint: allow(unordered-iter): trace frozen by golden logs
    for (const auto& [key, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_key = key;
      }
    }
    // Centroid refinement: the detector samples on a sparse grid, so the
    // true displacement smears over neighbouring vote bins; average the
    // bins near the argmax, weighted by vote count.
    const int peak_dx = best_key / 256 - 64;
    const int peak_dy = best_key % 256 - 64;
    double wx = 0.0;
    double wy = 0.0;
    double wsum = 0.0;
    // dmm-lint: allow(unordered-iter): FP sum order frozen by golden logs
    for (const auto& [key, count] : votes) {
      const int vdx = key / 256 - 64;
      const int vdy = key % 256 - 64;
      if (std::abs(vdx - peak_dx) <= 4 && std::abs(vdy - peak_dy) <= 4) {
        wx += static_cast<double>(count) * vdx;
        wy += static_cast<double>(count) * vdy;
        wsum += static_cast<double>(count);
      }
    }
    const int est_dx = static_cast<int>(std::lround(wx / wsum));
    const int est_dy = static_cast<int>(std::lround(wy / wsum));
    if (std::abs(est_dx - dx) <= 2 && std::abs(est_dy - dy) <= 2) {
      ++result.displacement_hits;
    }
    for (std::byte* patch : patches) manager_->deallocate(patch);
    ++result.pairs_processed;
  }
  return result;
}

}  // namespace dmm::workloads
