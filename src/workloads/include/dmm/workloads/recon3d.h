#ifndef DMM_WORKLOADS_RECON3D_H
#define DMM_WORKLOADS_RECON3D_H

#include <cstdint>

#include "dmm/alloc/allocator.h"
#include "dmm/workloads/image.h"

namespace dmm::workloads {

/// The paper's second case study: the corner-matching sub-algorithm of a
/// metric 3D-reconstruction pipeline (Pollefeys et al. / Target jr),
/// "where the relative displacement between frames is used to reconstruct
/// the 3rd dimension".
///
/// Per frame pair: render frame A, render frame B (same scene displaced
/// by an unknown (dx, dy)), detect corners in both, and for every corner
/// in A build a *dynamic candidate list* of compatible corners in B
/// (spatial window + descriptor distance).  The dominant displacement is
/// recovered by voting over the candidate pairs.  "The number of possible
/// corners to match varies on each image", so every frame's candidate
/// structures have unpredictable sizes — the case study's DM signature.
struct ReconConfig {
  int width = 640;
  int height = 480;
  int pairs = 6;            ///< image pairs per run
  int blobs = 40;           ///< scene complexity (drives corner counts)
  int search_radius = 24;   ///< candidate window half-size
  int descriptor_limit = 160;  ///< max L1 descriptor distance
};

struct ReconResult {
  int pairs_processed = 0;
  std::uint64_t corners_total = 0;
  std::uint64_t candidates_total = 0;
  int displacement_hits = 0;  ///< pairs whose (dx, dy) was recovered
};

class Recon3d {
 public:
  Recon3d(alloc::Allocator& manager, ReconConfig cfg = {})
      : manager_(&manager), cfg_(cfg) {}

  /// Processes cfg.pairs frame pairs seeded from @p seed.
  ReconResult run(unsigned seed);

 private:
  struct Match {
    std::int16_t ax, ay, bx, by;
    int distance;
  };

  alloc::Allocator* manager_;
  ReconConfig cfg_;
};

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_RECON3D_H
