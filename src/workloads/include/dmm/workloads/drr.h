#ifndef DMM_WORKLOADS_DRR_H
#define DMM_WORKLOADS_DRR_H

#include <cstdint>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/workloads/traffic.h"

namespace dmm::workloads {

/// Deficit Round Robin scheduler (Shreedhar & Varghese, SIGCOMM'95) — the
/// paper's first case study, "a scheduling algorithm implemented in many
/// routers today" from the NetBench suite.
///
/// One FIFO queue per flow; the scheduler visits active queues round-robin
/// and each visit adds `quantum` bytes to the queue's deficit counter; the
/// queue transmits head packets while their size fits in the deficit.
/// This is O(1) fair queuing: flows receive bandwidth proportional to
/// their quantum regardless of packet sizes.
///
/// All per-packet state is dynamic, through the Allocator under test:
///   * the packet payload buffer (40..1500+ B — "memory blocks that vary
///     greatly in size ... to store incoming packets"),
///   * the queue node threading it into its flow's FIFO.
///
/// The run interleaves arrivals with link service at `link_mbps`, so
/// queue build-up (and therefore DM footprint) follows the traffic's
/// burstiness exactly as in the paper's router scenario.
struct DrrConfig {
  std::uint32_t quantum = 1500;    ///< bytes added per round visit
  double link_mbps = 10.0;         ///< service rate
  std::size_t max_queue_packets = 32;  ///< tail-drop bound per queue
};

struct DrrStats {
  std::uint64_t forwarded_packets = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::size_t peak_queued_bytes = 0;
  std::size_t peak_queued_packets = 0;
  /// Bytes served per flow — DRR's fairness claim is that these are ~equal
  /// for backlogged flows with equal quanta.
  std::vector<std::uint64_t> per_flow_bytes;
};

class DrrScheduler {
 public:
  DrrScheduler(alloc::Allocator& manager, std::uint16_t flows,
               DrrConfig cfg = {});
  ~DrrScheduler();

  DrrScheduler(const DrrScheduler&) = delete;
  DrrScheduler& operator=(const DrrScheduler&) = delete;

  /// Feeds the arrival trace through the router: packets are enqueued on
  /// arrival and the link drains queues via DRR between arrivals.  At the
  /// end the link keeps serving until all queues are empty.
  void run(const std::vector<Packet>& arrivals);

  /// Enqueues one packet (allocates payload + node).  Returns false on
  /// tail drop or allocation failure.
  bool enqueue(const Packet& packet);

  /// Runs DRR service for @p bytes of link budget; frees what it sends.
  void serve_bytes(std::uint64_t bytes);

  [[nodiscard]] const DrrStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::size_t queued_packets() const {
    return queued_packets_;
  }

 private:
  struct Node {
    Node* next;
    std::byte* payload;
    std::uint32_t size;
  };
  struct Queue {
    Node* head = nullptr;
    Node* tail = nullptr;
    std::size_t packets = 0;
    std::uint32_t deficit = 0;
    bool active = false;  ///< in the active round-robin ring
  };

  void drop_or_free_node(Node* node);
  void activate(std::uint16_t flow);

  alloc::Allocator* manager_;
  DrrConfig cfg_;
  std::vector<Queue> queues_;
  std::vector<std::uint16_t> ring_;  ///< active queue round-robin order
  std::size_t ring_pos_ = 0;
  bool resume_mid_visit_ = false;
  std::size_t queued_bytes_ = 0;
  std::size_t queued_packets_ = 0;
  std::uint64_t service_deficit_bits_ = 0;
  DrrStats stats_;
};

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_DRR_H
