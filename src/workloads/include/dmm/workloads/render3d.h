#ifndef DMM_WORKLOADS_RENDER3D_H
#define DMM_WORKLOADS_RENDER3D_H

#include <cstdint>
#include <vector>

#include "dmm/alloc/allocator.h"

namespace dmm::workloads {

/// The paper's third case study: 3D video rendering with *scalable
/// meshes*, "a new category of video algorithms that adapt the quality of
/// each object on the screen ... according to the position of the user"
/// (QoS level-of-detail rendering).
///
/// Scene model: a set of objects, each a progressive mesh — a small base
/// mesh plus a stack of refinement layers.  Every frame the viewer moves;
/// each object's target level of detail follows its distance, so layers
/// are pushed (allocated) when the viewer approaches and popped (freed)
/// when it recedes: textbook stack-like DM behaviour, which is why the
/// paper also benchmarks Obstacks here.  Per frame the renderer also
/// allocates transform/render buffers it frees at frame end (again
/// LIFO).
///
/// The run ends with the *compositing phase* (phase 1): tile buffers are
/// allocated for the whole screen and freed in data-dependent,
/// out-of-order fashion as tiles complete — the non-stack phase where
/// "Obstacks cannot exploit its stack-like optimizations" and pays its
/// footprint penalty.
struct RenderConfig {
  int objects = 24;
  int frames = 120;
  int max_lod = 8;           ///< refinement layers per object
  int base_vertices = 64;
  std::uint32_t texture_bytes = 24 * 1024;  ///< lazy per-object texture
  int screen_tiles = 48;     ///< compositing tiles (8x6 grid)
  std::uint32_t tile_bytes = 32 * 1024;
  int composite_rounds = 4;  ///< interleaved tile passes in phase 1
  int overlays_per_round = 192;  ///< sprite buffers blended per pass
};

struct RenderResult {
  std::uint64_t frames_rendered = 0;
  std::uint64_t layers_pushed = 0;
  std::uint64_t layers_popped = 0;
  std::uint64_t vertices_transformed = 0;
  std::uint64_t tiles_composited = 0;
  double checksum = 0.0;  ///< keeps the transform work observable
};

class MeshRenderer {
 public:
  MeshRenderer(alloc::Allocator& manager, RenderConfig cfg = {})
      : manager_(&manager), cfg_(cfg) {}

  /// Renders cfg.frames frames (phase 0) then runs the compositing phase
  /// (phase 1).  Phases are announced through Allocator::set_phase so
  /// profilers and global managers can follow.
  RenderResult run(unsigned seed);

 private:
  struct Vertex {
    float x, y, z;
  };
  struct Layer {
    Vertex* vertices;
    int count;
  };
  struct Object {
    float ox, oy, oz;       ///< world position
    Vertex* base;           ///< base mesh vertices
    std::byte* texture = nullptr;  ///< streamed in on first close approach
    std::vector<Layer> lod; ///< active refinement stack
  };

  [[nodiscard]] int target_lod(const Object& obj, float vx, float vy,
                               float vz) const;

  alloc::Allocator* manager_;
  RenderConfig cfg_;
};

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_RENDER3D_H
