#ifndef DMM_WORKLOADS_IMAGE_H
#define DMM_WORKLOADS_IMAGE_H

#include <cstdint>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/alloc/stl_adaptor.h"

namespace dmm::workloads {

/// Grayscale image whose pixels live in manager-allocated memory — the
/// ">1 MB per 640x480 image" objects of the paper's second case study.
/// (Grayscale plus the detector's two 16-bit gradient planes reproduces
/// the same per-image dynamic footprint as the paper's colour frames.)
class SyntheticImage {
 public:
  /// Renders a random scene: @p blobs rectangles of random intensity over
  /// a noisy background.  Rectangle geometry depends on the seed, so the
  /// number of detectable corners is unpredictable at "compile time" —
  /// the very reason the paper's algorithm needs dynamic memory.
  SyntheticImage(alloc::Allocator& manager, int width, int height,
                 unsigned seed, int blobs = 40);
  ~SyntheticImage();

  SyntheticImage(const SyntheticImage&) = delete;
  SyntheticImage& operator=(const SyntheticImage&) = delete;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }

  /// Redraws the same scene displaced by (dx, dy) with fresh noise —
  /// the "relative displacement between frames" the reconstruction
  /// estimates.
  void redraw_displaced(unsigned seed, int dx, int dy);

 private:
  void render(unsigned seed, int dx, int dy);

  alloc::Allocator* manager_;
  int width_;
  int height_;
  int blobs_;
  unsigned scene_seed_;
  std::uint8_t* data_;
};

/// A detected corner feature with a tiny neighbourhood descriptor.
struct Corner {
  std::int16_t x = 0;
  std::int16_t y = 0;
  float response = 0.0f;
  std::uint8_t descriptor[8] = {};
};

template <typename T>
using ManagedVector = std::vector<T, alloc::StlAdaptor<T>>;

/// Harris-style corner detector.  All working planes (two int16 gradient
/// images) and the result list are allocated from @p manager, so the
/// detector's considerable scratch footprint is part of the case study.
[[nodiscard]] ManagedVector<Corner> detect_corners(
    alloc::Allocator& manager, const SyntheticImage& image,
    float threshold = 1e6f);

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_IMAGE_H
