#ifndef DMM_WORKLOADS_TRAFFIC_H
#define DMM_WORKLOADS_TRAFFIC_H

#include <cstdint>
#include <vector>

namespace dmm::workloads {

/// One network packet arrival.
struct Packet {
  std::uint64_t arrival_us = 0;  ///< arrival time (microseconds)
  std::uint32_t size = 0;        ///< wire size in bytes
  std::uint16_t flow = 0;        ///< flow id (maps to a DRR queue)
};

/// Synthetic internet-traffic generator standing in for the ITA traces
/// the paper feeds DRR ("10 real traces of internet network traffic up to
/// 10 Mbit/sec", Sec. 5).  See DESIGN.md's substitution table.
///
/// The model reproduces the properties DRR's DM behaviour depends on:
///   * the classic trimodal packet-size mix of internet backbones —
///     ~50% minimum-size ACKs (40 B), ~20% default-MTU segments (576 B),
///     ~25% Ethernet-MTU segments (1500 B), plus a jittered remainder —
///     so block sizes "vary greatly in size" as the paper requires,
///   * bursty arrivals: ON/OFF flows with Pareto-distributed burst and
///     idle lengths (the standard self-similarity construction), which
///     create the queue build-ups that drive peak memory,
///   * an aggregate offered load calibrated against a configurable link
///     rate (default 10 Mbit/s).
struct TrafficConfig {
  double link_mbps = 10.0;       ///< offered-load calibration
  /// Offered/service ratio.  Below 1 the router keeps up on average and
  /// queues build only during Pareto bursts — the regime of the paper's
  /// "up to 10 Mbit/sec" traces (sustained overload would just measure
  /// the tail-drop bound, not the manager).
  double load_factor = 0.45;
  std::uint16_t flows = 16;      ///< concurrent flows (DRR queues)
  std::uint32_t packets = 40000; ///< packets per trace
  double pareto_alpha = 1.5;     ///< burst-length tail index
  double mean_burst_packets = 24;
  /// Rate multiplier while a flow is ON (bursts arrive this much faster
  /// than the flow's long-run share; the OFF gaps compensate).
  double on_speedup = 3.0;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficConfig cfg = {}) : cfg_(cfg) {}

  /// Generates one trace; @p seed selects which of the "10 real traces"
  /// stand-ins is produced (any seed is valid).
  [[nodiscard]] std::vector<Packet> generate(unsigned seed) const;

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

  /// Empirical share of bytes in [lo, hi] over a trace (tests).
  [[nodiscard]] static double size_share(const std::vector<Packet>& trace,
                                         std::uint32_t lo, std::uint32_t hi);

 private:
  TrafficConfig cfg_;
};

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_TRAFFIC_H
