#ifndef DMM_WORKLOADS_WORKLOAD_H
#define DMM_WORKLOADS_WORKLOAD_H

#include <functional>
#include <string>
#include <vector>

#include "dmm/alloc/allocator.h"
#include "dmm/core/trace.h"

namespace dmm::workloads {

/// One of the paper's case studies, runnable against any manager.
struct Workload {
  std::string name;         ///< "drr", "recon3d", "render3d"
  std::string table1_name;  ///< column title as in Table 1
  /// Runs the application once; every dynamic byte goes through @p m.
  std::function<void(alloc::Allocator& m, unsigned seed)> run;
  /// Managers Table 1 reports for this column (plus "custom").
  std::vector<std::string> table1_baselines;
};

/// The three case studies of Sec. 5, in paper order.
[[nodiscard]] const std::vector<Workload>& case_studies();

/// Looks a case study up by name; aborts on unknown names.
[[nodiscard]] const Workload& case_study(const std::string& name);

/// Profiles a case study: runs it once on a scratch manager under the
/// ProfilingAllocator and returns the captured allocation trace
/// (methodology step 1).
[[nodiscard]] core::AllocTrace record_trace(const Workload& workload,
                                            unsigned seed);

}  // namespace dmm::workloads

#endif  // DMM_WORKLOADS_WORKLOAD_H
