#include "dmm/workloads/workload.h"

#include <cstdio>
#include <cstdlib>

#include "dmm/core/profiler.h"
#include "dmm/managers/lea.h"
#include "dmm/workloads/drr.h"
#include "dmm/workloads/recon3d.h"
#include "dmm/workloads/render3d.h"
#include "dmm/workloads/traffic.h"

namespace dmm::workloads {

const std::vector<Workload>& case_studies() {
  static const std::vector<Workload> kStudies = {
      {"drr",
       "DRR scheduler",
       [](alloc::Allocator& m, unsigned seed) {
         TrafficGenerator gen;
         DrrScheduler drr(m, gen.config().flows);
         drr.run(gen.generate(seed));
       },
       // Table 1 reports Kingsley and Lea for the DRR column.
       {"kingsley", "lea"}},
      {"recon3d",
       "3D image reconst.",
       [](alloc::Allocator& m, unsigned seed) {
         Recon3d recon(m);
         (void)recon.run(seed);
       },
       // Table 1 reports Kingsley and Regions for this column.
       {"kingsley", "regions"}},
      {"render3d",
       "3D scalable rendering",
       [](alloc::Allocator& m, unsigned seed) {
         MeshRenderer renderer(m);
         (void)renderer.run(seed);
       },
       // Table 1 reports Kingsley, Lea and Obstacks for this column.
       {"kingsley", "lea", "obstacks"}},
  };
  return kStudies;
}

const Workload& case_study(const std::string& name) {
  for (const Workload& w : case_studies()) {
    if (w.name == name) return w;
  }
  std::fprintf(stderr, "unknown case study '%s'\n", name.c_str());
  std::abort();
}

core::AllocTrace record_trace(const Workload& workload, unsigned seed) {
  sysmem::SystemArena arena;
  managers::LeaAllocator backing(arena);
  core::ProfilingAllocator profiler(backing);
  workload.run(profiler, seed);
  core::AllocTrace trace = profiler.take_trace();
  trace.close_leaks();
  return trace;
}

}  // namespace dmm::workloads
