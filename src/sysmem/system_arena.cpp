#include "dmm/sysmem/system_arena.h"

#include <cstdio>
#include <cstdlib>
#include <new>

namespace dmm::sysmem {

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::sysmem fatal: %s\n", what);
  std::abort();
}

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

SystemArena::SystemArena(std::size_t capacity_bytes, std::size_t page_size)
    : capacity_(capacity_bytes), page_size_(page_size) {
  if (!is_power_of_two(page_size_)) {
    die("page size must be a power of two");
  }
}

SystemArena::~SystemArena() {
  // Managers are expected to release everything; leaked grants are freed
  // here so the process stays clean, but tests assert live_chunks()==0.
  for (auto& [ptr, size] : grants_) {
    ::operator delete(const_cast<std::byte*>(ptr),
                      std::align_val_t{alignof(std::max_align_t)});
  }
}

std::size_t SystemArena::rounded(std::size_t bytes) const {
  if (bytes == 0) bytes = 1;
  return (bytes + page_size_ - 1) & ~(page_size_ - 1);
}

std::byte* SystemArena::request(std::size_t bytes, std::size_t* granted) {
  const std::size_t size = rounded(bytes);
  if (capacity_ != 0 && stats_.current_footprint + size > capacity_) {
    ++stats_.failed_requests;
    return nullptr;
  }
  auto* ptr = static_cast<std::byte*>(::operator new(
      size, std::align_val_t{alignof(std::max_align_t)}, std::nothrow));
  if (ptr == nullptr) {
    ++stats_.failed_requests;
    return nullptr;
  }
  grants_.emplace(ptr, size);
  stats_.current_footprint += size;
  stats_.total_requested += size;
  ++stats_.request_count;
  if (stats_.current_footprint > stats_.peak_footprint) {
    stats_.peak_footprint = stats_.current_footprint;
  }
  if (granted != nullptr) *granted = size;
  if (observer_) observer_(stats_, static_cast<long long>(size));
  return ptr;
}

void SystemArena::release(std::byte* ptr) {
  auto it = grants_.find(ptr);
  if (it == grants_.end()) {
    die("release() of a pointer that is not a live grant");
  }
  const std::size_t size = it->second;
  grants_.erase(it);
  ::operator delete(ptr, std::align_val_t{alignof(std::max_align_t)});
  stats_.current_footprint -= size;
  stats_.total_released += size;
  ++stats_.release_count;
  if (observer_) observer_(stats_, -static_cast<long long>(size));
}

bool SystemArena::owns(const std::byte* ptr) const {
  return grants_.contains(ptr);
}

std::size_t SystemArena::grant_size(const std::byte* ptr) const {
  auto it = grants_.find(ptr);
  return it == grants_.end() ? 0 : it->second;
}

}  // namespace dmm::sysmem
