#include "dmm/sysmem/system_arena.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define DMM_SYSMEM_HAVE_MMAP 1
#else
#include <new>
#endif

namespace dmm::sysmem {

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "dmm::sysmem fatal: %s\n", what);
  std::abort();
}

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Internal carve granularity: keeps every grant ChunkHeader-aligned even
/// when the configured page size is smaller than 16.
constexpr std::size_t kGrainBytes = 16;

std::size_t grain_rounded(std::size_t bytes) {
  return (bytes + kGrainBytes - 1) & ~(kGrainBytes - 1);
}

}  // namespace

SystemArena::SystemArena(std::size_t capacity_bytes, std::size_t page_size)
    : capacity_(capacity_bytes), page_size_(page_size) {
  if (!is_power_of_two(page_size_)) {
    die("page size must be a power of two");
  }
}

SystemArena::~SystemArena() {
  // Managers are expected to release everything; tests assert
  // live_chunks()==0.  The whole slab goes back to the OS either way.
  if (slab_ != nullptr) {
#if DMM_SYSMEM_HAVE_MMAP
    ::munmap(slab_, slab_bytes_);
#else
    ::operator delete(slab_, std::align_val_t{kGrainBytes});
#endif
  }
}

bool SystemArena::ensure_slab() {
  if (slab_ != nullptr) return true;
  if (slab_failed_) return false;
#if DMM_SYSMEM_HAVE_MMAP
  void* p = ::mmap(nullptr, kSlabBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS
#ifdef MAP_NORESERVE
                       | MAP_NORESERVE
#endif
                   ,
                   -1, 0);
  if (p == MAP_FAILED) {
    slab_failed_ = true;
    return false;
  }
  slab_ = static_cast<std::byte*>(p);
  slab_bytes_ = kSlabBytes;
#else
  // Fallback: one *eager* allocation, so it must stay modest — and it is
  // attempted once (a failed 256 MiB grab would otherwise repeat on every
  // request and drown the search in allocation churn).
  slab_ = static_cast<std::byte*>(::operator new(
      kFallbackSlabBytes, std::align_val_t{kGrainBytes}, std::nothrow));
  if (slab_ == nullptr) {
    slab_failed_ = true;
    return false;
  }
  slab_bytes_ = kFallbackSlabBytes;
#endif
  return true;
}

std::size_t SystemArena::take_region(std::size_t size) {
  // Lowest-offset-first reuse: the scan order is a pure function of the
  // request/release history, which is what makes chunk addresses — and
  // every address-ordered structure built on them — deterministic.
  for (auto it = free_regions_.begin(); it != free_regions_.end(); ++it) {
    if (it->second < size) continue;
    const std::size_t offset = it->first;
    const std::size_t remainder = it->second - size;
    free_regions_.erase(it);
    if (remainder > 0) free_regions_.emplace(offset + size, remainder);
    return offset;
  }
  if (slab_bytes_ - bump_ < size) return kNpos;
  const std::size_t offset = bump_;
  bump_ += size;
  return offset;
}

void SystemArena::give_region(std::size_t offset, std::size_t size) {
  // Coalesce with the free neighbours, then fold a region ending at the
  // bump frontier back into the wilderness.
  auto next = free_regions_.lower_bound(offset);
  if (next != free_regions_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      offset = prev->first;
      size += prev->second;
      free_regions_.erase(prev);
    }
  }
  if (next != free_regions_.end() && offset + size == next->first) {
    size += next->second;
    free_regions_.erase(next);
  }
  if (offset + size == bump_) {
    bump_ = offset;
    return;
  }
  free_regions_.emplace(offset, size);
}

std::size_t SystemArena::rounded(std::size_t bytes) const {
  if (bytes == 0) bytes = 1;
  return (bytes + page_size_ - 1) & ~(page_size_ - 1);
}

std::byte* SystemArena::request(std::size_t bytes, std::size_t* granted) {
  const std::size_t size = rounded(bytes);
  if (capacity_ != 0 && stats_.current_footprint + size > capacity_) {
    ++stats_.failed_requests;
    return nullptr;
  }
  if (!ensure_slab()) {
    ++stats_.failed_requests;
    return nullptr;
  }
  const std::size_t offset = take_region(grain_rounded(size));
  if (offset == kNpos) {
    ++stats_.failed_requests;
    return nullptr;
  }
  std::byte* ptr = slab_ + offset;
  grants_.emplace(ptr, size);
  stats_.current_footprint += size;
  stats_.total_requested += size;
  ++stats_.request_count;
  if (stats_.current_footprint > stats_.peak_footprint) {
    stats_.peak_footprint = stats_.current_footprint;
  }
  if (granted != nullptr) *granted = size;
  if (observer_) observer_(stats_, static_cast<long long>(size));
  return ptr;
}

void SystemArena::release(std::byte* ptr) {
  auto it = grants_.find(ptr);
  if (it == grants_.end()) {
    die("release() of a pointer that is not a live grant");
  }
  const std::size_t size = it->second;
  grants_.erase(it);
  give_region(static_cast<std::size_t>(ptr - slab_), grain_rounded(size));
  stats_.current_footprint -= size;
  stats_.total_released += size;
  ++stats_.release_count;
  if (observer_) observer_(stats_, -static_cast<long long>(size));
}

ArenaSnapshot SystemArena::save_state() const {
  ArenaSnapshot snap;
  snap.bump = bump_;
  if (bump_ > 0) {
    snap.bytes.resize(bump_);
    std::memcpy(snap.bytes.data(), slab_, bump_);
  }
  snap.free_regions.assign(free_regions_.begin(), free_regions_.end());
  snap.grants.reserve(grants_.size());
  // dmm-lint: allow(unordered-iter): grants are sorted below before use
  for (const auto& [ptr, size] : grants_) {
    snap.grants.emplace_back(static_cast<std::size_t>(ptr - slab_), size);
  }
  // Sorted so restore rebuilds the unordered_map from a canonical sequence
  // (the map itself does not care, but the snapshot becomes comparable).
  std::sort(snap.grants.begin(), snap.grants.end());
  snap.stats = stats_;
  snap.capacity = capacity_;
  snap.page_size = page_size_;
  snap.old_base = slab_;
  return snap;
}

bool SystemArena::restore_state(const ArenaSnapshot& snap) {
  if (capacity_ != snap.capacity || page_size_ != snap.page_size) {
    return false;
  }
  if (snap.bump > 0 && !ensure_slab()) return false;
  if (snap.bump > slab_bytes_) return false;  // fallback slab too small
  if (snap.bump > 0) {
    std::memcpy(slab_, snap.bytes.data(), snap.bump);
  }
  bump_ = snap.bump;
  free_regions_.clear();
  for (const auto& [offset, size] : snap.free_regions) {
    free_regions_.emplace(offset, size);
  }
  grants_.clear();
  for (const auto& [offset, size] : snap.grants) {
    grants_.emplace(slab_ + offset, size);
  }
  stats_ = snap.stats;
  return true;
}

bool SystemArena::owns(const std::byte* ptr) const {
  return grants_.contains(ptr);
}

std::size_t SystemArena::grant_size(const std::byte* ptr) const {
  auto it = grants_.find(ptr);
  return it == grants_.end() ? 0 : it->second;
}

}  // namespace dmm::sysmem
