#ifndef DMM_SYSMEM_SYSTEM_ARENA_H
#define DMM_SYSMEM_SYSTEM_ARENA_H

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmm/sysmem/arena_stats.h"

namespace dmm::sysmem {

/// Deep copy of an arena's deterministic state, for the incremental-replay
/// checkpoints (core/checkpoint.h).  Offsets are relative to the slab base
/// so a snapshot can be restored into a *different* arena whose slab landed
/// at another address; `old_base` lets allocator-layer snapshots relocate
/// the raw pointers they stored.
struct ArenaSnapshot {
  std::vector<std::byte> bytes;  ///< slab contents [0, bump)
  std::size_t bump = 0;
  std::vector<std::pair<std::size_t, std::size_t>> free_regions;  ///< offset,size
  std::vector<std::pair<std::size_t, std::size_t>> grants;        ///< offset,size
  ArenaStats stats;
  std::size_t capacity = 0;
  std::size_t page_size = 0;
  const std::byte* old_base = nullptr;  ///< slab base when captured
};

/// Simulated OS memory interface (the paper's "system memory").
///
/// Every dynamic-memory manager in this library draws *all* of its storage
/// from a SystemArena, mimicking sbrk()/mmap() on the embedded OS the paper
/// targets.  The arena therefore observes the exact footprint each manager
/// imposes on the platform:
///
///   * request(bytes)  — obtain a chunk from the OS (rounded up to the page
///                       granularity); counted into the footprint.
///   * release(chunk)  — hand a chunk back to the OS (what the paper calls
///                       "returned back to the system for other
///                       applications"); removed from the footprint.
///
/// The arena optionally enforces a capacity budget, modelling the limited
/// physical memory of a portable consumer device: a request that would
/// exceed the budget fails (returns nullptr) instead of growing.
///
/// An observer callback fires on every footprint change; the trace
/// simulator uses it to record the Fig. 5 footprint-over-time series.
///
/// The arena is deliberately single-threaded: the paper's methodology is
/// applied per application phase on an embedded RTOS where the manager runs
/// under one lock anyway.  (Thread-safety would only blur the footprint
/// accounting the experiments need.)  Distinct arenas on distinct threads
/// are fully independent.
///
/// **Deterministic addresses.**  Chunks are carved from one reserved slab
/// (lowest-offset-first reuse of released regions), so an identical
/// request/release sequence yields identical chunk *offsets* — and hence
/// identical address ordering — in every run, on every thread.  Managers
/// keep address-sorted free lists and first-fit scan orders; without this,
/// two replays of the same candidate could disagree, and the parallel
/// exploration engine could not promise bit-identical results to the
/// serial one.
class SystemArena {
 public:
  /// Page granularity used to round requests, like an MMU page.
  static constexpr std::size_t kDefaultPageSize = 4096;

  /// Virtual reservation backing one arena (lazily mapped, pages commit on
  /// touch).  ~1000x the largest workload footprint in the repo; request()
  /// fails like an exhausted OS once it is spent.  Shrunk on 32-bit hosts,
  /// where 4 GiB does not even fit in size_t.
  static constexpr std::size_t kSlabBytes = sizeof(std::size_t) >= 8
                                                ? std::size_t{1} << 32
                                                : std::size_t{1} << 30;
  /// Reservation used by the no-mmap fallback, which allocates eagerly and
  /// therefore must stay modest.
  static constexpr std::size_t kFallbackSlabBytes = std::size_t{1} << 28;

  /// Signature: (stats, delta_bytes) with delta>0 for growth, <0 for shrink.
  using Observer = std::function<void(const ArenaStats&, long long)>;

  /// Creates an arena with unlimited capacity.
  SystemArena() : SystemArena(0, kDefaultPageSize) {}

  /// @param capacity_bytes  0 = unlimited; otherwise hard budget.
  /// @param page_size       rounding granularity for requests (power of 2).
  explicit SystemArena(std::size_t capacity_bytes,
                       std::size_t page_size = kDefaultPageSize);

  SystemArena(const SystemArena&) = delete;
  SystemArena& operator=(const SystemArena&) = delete;
  ~SystemArena();

  /// Obtains @p bytes (rounded up to the page size) from the simulated OS.
  /// Returns nullptr if the capacity budget would be exceeded.
  /// The actual granted size is written to *granted (if non-null).
  [[nodiscard]] std::byte* request(std::size_t bytes,
                                   std::size_t* granted = nullptr);

  /// Returns a chunk previously obtained with request().
  /// @p ptr must be exactly a pointer returned by request() and not yet
  /// released; anything else aborts (memory-corruption tripwire).
  void release(std::byte* ptr);

  /// Size that request(bytes) would actually grant (page rounding).
  [[nodiscard]] std::size_t rounded(std::size_t bytes) const;

  [[nodiscard]] const ArenaStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t page_size() const { return page_size_; }

  /// Bytes currently held from the OS.  Convenience accessor.
  [[nodiscard]] std::size_t footprint() const {
    return stats_.current_footprint;
  }
  /// High-water mark — the paper's "maximum memory footprint".
  [[nodiscard]] std::size_t peak_footprint() const {
    return stats_.peak_footprint;
  }

  /// Resets the peak to the current footprint (used between workload
  /// phases when measuring per-phase peaks).
  void reset_peak() { stats_.peak_footprint = stats_.current_footprint; }

  /// Installs (or clears, with nullptr) the footprint-change observer.
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Number of chunks currently granted and not yet released.
  [[nodiscard]] std::size_t live_chunks() const { return grants_.size(); }

  /// True iff @p ptr is a currently live grant of this arena.
  [[nodiscard]] bool owns(const std::byte* ptr) const;

  /// Size of the live grant starting at @p ptr (0 if not a live grant).
  [[nodiscard]] std::size_t grant_size(const std::byte* ptr) const;

  /// Captures the full deterministic state (slab bytes up to the bump
  /// frontier, free regions, live grants, stats).  O(bump) memcpy.
  [[nodiscard]] ArenaSnapshot save_state() const;

  /// Overwrites this arena's state with @p snap.  Any current grants are
  /// discarded wholesale (the restore target is a scratch arena owned by
  /// the replay).  Returns false — leaving the arena unusable for resume —
  /// if the slab cannot be mapped or the snapshot does not fit; callers
  /// fall back to a cold replay.  Requires matching capacity/page_size.
  [[nodiscard]] bool restore_state(const ArenaSnapshot& snap);

  /// Slab base address (nullptr until the first request maps it).
  /// Checkpoint restore uses new_base - snapshot.old_base to relocate
  /// stored pointers.
  [[nodiscard]] const std::byte* slab_base() const { return slab_; }

 private:
  /// Maps the slab on first use (keeps never-used arenas free).
  [[nodiscard]] bool ensure_slab();
  /// Lowest-offset region of >= @p size bytes, or npos.
  [[nodiscard]] std::size_t take_region(std::size_t size);
  void give_region(std::size_t offset, std::size_t size);

  std::size_t capacity_;
  std::size_t page_size_;
  ArenaStats stats_;
  Observer observer_;
  // Live grants: base pointer -> granted size.  unordered_map keeps
  // release() O(1); the arena is bookkeeping, not the hot path under test.
  std::unordered_map<const std::byte*, std::size_t> grants_;

  // Deterministic slab: released regions keyed by offset (ordered, so
  // reuse is lowest-offset-first), plus a bump pointer for fresh carves.
  std::byte* slab_ = nullptr;
  std::size_t slab_bytes_ = 0;  ///< reservation size actually mapped
  bool slab_failed_ = false;    ///< reservation failed; don't retry
  std::size_t bump_ = 0;
  std::map<std::size_t, std::size_t> free_regions_;  // offset -> size
};

}  // namespace dmm::sysmem

#endif  // DMM_SYSMEM_SYSTEM_ARENA_H
