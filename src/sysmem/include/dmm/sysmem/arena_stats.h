#ifndef DMM_SYSMEM_ARENA_STATS_H
#define DMM_SYSMEM_ARENA_STATS_H

#include <cstddef>
#include <cstdint>

namespace dmm::sysmem {

/// Aggregate accounting for a SystemArena.
///
/// All byte counts refer to memory *held from the simulated OS*, i.e. the
/// quantity the paper's Table 1 reports as "maximum memory footprint".
/// Internal allocator overheads (headers, free-list slack, cached empty
/// chunks) are by construction included, because every manager obtains all
/// of its memory through the arena.
struct ArenaStats {
  /// Bytes currently held from the OS.
  std::size_t current_footprint = 0;
  /// High-water mark of current_footprint over the arena's lifetime.
  std::size_t peak_footprint = 0;
  /// Sum of all bytes ever requested (monotone).
  std::uint64_t total_requested = 0;
  /// Sum of all bytes ever released back (monotone).
  std::uint64_t total_released = 0;
  /// Number of request() calls that succeeded.
  std::uint64_t request_count = 0;
  /// Number of release() calls.
  std::uint64_t release_count = 0;
  /// Number of request() calls rejected by the capacity budget.
  std::uint64_t failed_requests = 0;

  /// Live grants = requests minus releases (count, not bytes).
  [[nodiscard]] std::uint64_t live_grants() const {
    return request_count - release_count;
  }
};

}  // namespace dmm::sysmem

#endif  // DMM_SYSMEM_ARENA_STATS_H
