#ifndef DMM_RUNTIME_TELEMETRY_H
#define DMM_RUNTIME_TELEMETRY_H

#include <atomic>
#include <cstdint>

#include "dmm/sysmem/arena_stats.h"

namespace dmm::runtime {

// ---------------------------------------------------------------------------
// Always-on telemetry of the deployable runtime front.
//
// Every counter is a relaxed atomic: updates ride the allocation fast path
// (one or two uncontended RMWs per call, no locks, no fences beyond the
// RMW itself) and a snapshot may be taken from any thread while traffic is
// in flight.  Relaxed ordering means a snapshot is not a single cross-
// counter instant — alloc_count and bytes_live may disagree by the calls
// racing the read — but each counter individually is exact, which is the
// contract monitoring needs.
//
// The byte counters account *requested* bytes (application demand), the
// same quantity the simulator's peak_live_bytes tracks; the arena view in
// TelemetrySnapshot carries the footprint side (bytes held from the OS),
// so a snapshot exposes both halves of the paper's Sec. 4.1 split.
// ---------------------------------------------------------------------------

/// One coherent-enough copy of every counter plus the arena's accounting,
/// readable without stopping traffic (see RuntimeTelemetry::snapshot).
struct TelemetrySnapshot {
  std::uint64_t alloc_count = 0;    ///< successful malloc/realloc-grow calls
  std::uint64_t free_count = 0;     ///< free calls with a live pointer
  std::uint64_t realloc_count = 0;  ///< realloc calls (any outcome)
  std::uint64_t cache_hits = 0;     ///< allocs served from a thread cache
  std::uint64_t bytes_live = 0;     ///< requested bytes currently live
  std::uint64_t peak_bytes_live = 0;  ///< high-water mark of bytes_live

  // OOM events, split per policy outcome (the ISSUE's "per policy
  // outcome" contract): every exhausted allocation lands in exactly one
  // of died/returned_null/callback_recovered/callback_failed.
  std::uint64_t oom_died = 0;           ///< kDie fired (counted pre-abort)
  std::uint64_t oom_returned_null = 0;  ///< kNull, or kCallback gave up
  std::uint64_t oom_callback_invocations = 0;  ///< callback calls, total
  std::uint64_t oom_callback_recovered = 0;  ///< retries that then succeeded

  /// The designed arena's accounting at snapshot time (footprint side).
  sysmem::ArenaStats arena;
};

/// The live counters.  Mutation is relaxed-atomic and wait-free; reading
/// happens through snapshot().
class RuntimeTelemetry {
 public:
  void note_alloc(std::uint64_t requested, bool from_cache) {
    alloc_count_.fetch_add(1, std::memory_order_relaxed);
    if (from_cache) cache_hits_.fetch_add(1, std::memory_order_relaxed);
    note_live_delta(static_cast<std::int64_t>(requested));
  }

  void note_free(std::uint64_t requested) {
    free_count_.fetch_add(1, std::memory_order_relaxed);
    note_live_delta(-static_cast<std::int64_t>(requested));
  }

  void note_realloc() {
    realloc_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// In-place realloc: the pointer stays, only the requested size moves.
  void note_resize(std::uint64_t old_requested, std::uint64_t new_requested) {
    note_live_delta(static_cast<std::int64_t>(new_requested) -
                    static_cast<std::int64_t>(old_requested));
  }

  void note_oom_died() {
    oom_died_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_oom_null() {
    oom_returned_null_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_oom_callback() {
    oom_callback_invocations_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_oom_recovered() {
    oom_callback_recovered_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Counter half of a snapshot; the caller merges the arena stats (which
  /// live with the arena, under the core lock).
  [[nodiscard]] TelemetrySnapshot snapshot() const {
    TelemetrySnapshot s;
    s.alloc_count = alloc_count_.load(std::memory_order_relaxed);
    s.free_count = free_count_.load(std::memory_order_relaxed);
    s.realloc_count = realloc_count_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.bytes_live = bytes_live_.load(std::memory_order_relaxed);
    s.peak_bytes_live = peak_bytes_live_.load(std::memory_order_relaxed);
    s.oom_died = oom_died_.load(std::memory_order_relaxed);
    s.oom_returned_null =
        oom_returned_null_.load(std::memory_order_relaxed);
    s.oom_callback_invocations =
        oom_callback_invocations_.load(std::memory_order_relaxed);
    s.oom_callback_recovered =
        oom_callback_recovered_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void note_live_delta(std::int64_t delta) {
    const std::uint64_t now =
        bytes_live_.fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    // Lock-free high-water mark: racing updaters each raise the peak to at
    // least their own observation; the max of all observations wins.
    std::uint64_t peak = peak_bytes_live_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_live_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> alloc_count_{0};
  std::atomic<std::uint64_t> free_count_{0};
  std::atomic<std::uint64_t> realloc_count_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> bytes_live_{0};
  std::atomic<std::uint64_t> peak_bytes_live_{0};
  std::atomic<std::uint64_t> oom_died_{0};
  std::atomic<std::uint64_t> oom_returned_null_{0};
  std::atomic<std::uint64_t> oom_callback_invocations_{0};
  std::atomic<std::uint64_t> oom_callback_recovered_{0};
};

}  // namespace dmm::runtime

#endif  // DMM_RUNTIME_TELEMETRY_H
