#ifndef DMM_RUNTIME_DESIGNED_ALLOCATOR_H
#define DMM_RUNTIME_DESIGNED_ALLOCATOR_H

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dmm/alloc/config.h"
#include "dmm/alloc/custom_manager.h"
#include "dmm/runtime/oom.h"
#include "dmm/runtime/telemetry.h"
#include "dmm/sysmem/system_arena.h"

namespace dmm::runtime {

// ---------------------------------------------------------------------------
// The deployable front over the designed policy core.
//
// The methodology's product (alloc::CustomManager — see alloc/policy_core.h
// for the split) is a deterministic, single-threaded policy core: exactly
// what replay scoring and checkpointing need, and exactly NOT what live
// traffic needs.  DesignedAllocator wraps one core instance with the three
// things deployment adds and design must never see:
//
//   * concurrency  — the core runs under one lock; per-thread caches of
//     freed blocks absorb the fast path so the designed pool layout stays
//     exactly as the offline search scored it while concurrent alloc/free
//     is safe.  Caches are bounded (bytes + per-bin entries) and recycle a
//     block only for requests its capacity is known to satisfy, so cache
//     hits never widen a block beyond what the core already granted.
//   * failure policy — the core reports exhaustion as nullptr; the front
//     turns that into the configured OOM contract (oom.h) after first
//     reclaiming the calling thread's cache back into the core.
//   * telemetry   — relaxed-atomic counters riding the arena's accounting
//     (telemetry.h), snapshot-readable from any thread mid-traffic.
//
// Determinism escape hatch: with RuntimeOptions::thread_cache_bytes == 0
// every call forwards straight to the core under the lock, so a
// single-threaded replay through the front touches the arena in exactly
// the order the simulator did — bench_runtime uses this to check the
// deployed peak footprint against the designed bound to the byte.
// ---------------------------------------------------------------------------

struct RuntimeOptions {
  /// Arena budget in bytes (0 = unlimited), like the embedded device's
  /// physical memory.  The OOM policy decides what exhaustion means.
  std::size_t arena_capacity_bytes = 0;

  OomPolicy oom_policy = OomPolicy::kNull;
  /// Release-and-retry hook for OomPolicy::kCallback (ignored otherwise).
  OomCallback oom_callback;
  /// Max callback invocations per failing allocation before giving up.
  unsigned oom_retry_limit = 8;

  /// Per-thread cache budget in bytes; 0 disables caching entirely
  /// (every call serialises on the core — the deterministic replay mode).
  std::size_t thread_cache_bytes = 256 * 1024;
  /// Cap on entries per size-class bin of one thread cache.
  std::size_t thread_cache_bin_entries = 32;
};

class DesignedAllocator {
 public:
  /// @p cfg must be a deployable vector (no hard rule violations — the
  /// core aborts otherwise, same contract as CustomManager).  Artifacts
  /// loaded via load_config_artifact() are pre-validated.
  explicit DesignedAllocator(const alloc::DmmConfig& cfg,
                             RuntimeOptions opts = {});
  DesignedAllocator(const DesignedAllocator&) = delete;
  DesignedAllocator& operator=(const DesignedAllocator&) = delete;

  /// Flushes every thread's cache back into the core.  Threads must be
  /// done with this allocator (quiescent or joined) before destruction.
  ~DesignedAllocator();

  /// malloc contract: never nullptr for a satisfiable request; on
  /// exhaustion the configured OOM policy decides (die / nullptr /
  /// callback-retry).  A zero-byte request allocates one byte.
  [[nodiscard]] void* malloc(std::size_t bytes);

  /// free contract: nullptr is a no-op; a pointer this allocator does not
  /// own, or a double free, aborts (memory-corruption tripwire, same
  /// stance as the arena).  Any thread may free any pointer.
  void free(void* ptr);

  /// realloc contract: nullptr -> malloc, size 0 -> free + nullptr,
  /// shrink/grow within the block's capacity is in place, otherwise
  /// allocate-copy-free.  On allocation failure the old block is intact
  /// and nullptr is returned (kNull/callback-exhausted policies).
  [[nodiscard]] void* realloc(void* ptr, std::size_t bytes);

  /// Capacity of a live block (>= the requested size); 0 for pointers this
  /// allocator does not currently own.
  [[nodiscard]] std::size_t usable_size(const void* ptr) const;

  /// Counter snapshot plus the designed arena's accounting; callable from
  /// any thread while traffic is in flight.
  [[nodiscard]] TelemetrySnapshot telemetry() const;

  /// Returns every block cached by the *calling* thread to the core
  /// (what an OOM callback typically wants to do first).
  void trim();

  /// Fault-injection seam (tests): the next @p failures core allocations
  /// fail as if the arena were exhausted, driving the OOM path without
  /// needing a full arena.
  void inject_arena_exhaustion(std::uint64_t failures);

  [[nodiscard]] const alloc::DmmConfig& config() const {
    return core_.config();
  }

 private:
  struct ThreadCache;  // defined in designed_allocator.cpp
  friend struct ThreadCacheRegistry;

  /// Per-pointer bookkeeping: block capacity (core grant) and the live
  /// requested size, or kCachedSentinel while the block sits in a thread
  /// cache.  Sharded to keep cross-thread frees from serialising.
  struct BlockInfo {
    std::size_t capacity = 0;
    std::size_t requested = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<const void*, BlockInfo> map;
  };
  static constexpr std::size_t kShardCount = 16;

  [[nodiscard]] Shard& shard_for(const void* p) const;
  [[nodiscard]] ThreadCache* this_thread_cache();

  [[nodiscard]] void* slow_malloc(std::size_t request, ThreadCache* cache);
  [[nodiscard]] void* core_allocate(std::size_t request,
                                    std::size_t* capacity);
  [[nodiscard]] void* handle_oom(std::size_t request, std::size_t* capacity);
  [[nodiscard]] bool consume_injected_failure();

  [[nodiscard]] bool cacheable(std::size_t capacity) const;
  void cache_push(ThreadCache& cache, void* ptr, std::size_t capacity);
  [[nodiscard]] void* cache_pop(ThreadCache& cache, std::size_t request);
  /// Empties @p cache into the core (shard entries erased, blocks freed).
  void flush_cache(ThreadCache& cache);
  void release_to_core(const std::vector<void*>& ptrs);

  RuntimeOptions opts_;
  sysmem::SystemArena arena_;
  /// Serialises every core/arena touch; the arena's stats are read under
  /// it too (telemetry()).
  mutable std::mutex core_mu_;
  alloc::CustomManager core_;
  /// Blocks at or above the designed big-request threshold bypass the
  /// thread caches: the core routes them to dedicated chunks that should
  /// flow back to the arena, not sit in a cache.
  std::size_t cache_block_limit_;
  mutable std::array<Shard, kShardCount> shards_;
  RuntimeTelemetry telemetry_;
  /// This allocator's live thread caches; guarded by the process-wide
  /// cache registry mutex (see designed_allocator.cpp).
  std::vector<ThreadCache*> caches_;
  std::atomic<std::uint64_t> injected_failures_{0};
};

}  // namespace dmm::runtime

#endif  // DMM_RUNTIME_DESIGNED_ALLOCATOR_H
