#ifndef DMM_RUNTIME_CONFIG_ARTIFACT_H
#define DMM_RUNTIME_CONFIG_ARTIFACT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dmm/alloc/config.h"

namespace dmm::runtime {

// ---------------------------------------------------------------------------
// The design-to-deployment handoff: a small, versioned, checksummed file
// carrying the winning decision vector(s) from a search CLI (`drr_explore
// --export-config`, `dmm_client --export-config`) to the deployable
// runtime (DesignedAllocator, bench_runtime).  One record per designed
// phase, in phase order; single-phase and family designs carry one.
//
// On-disk layout (little-endian, fixed width, written byte by byte like
// the score-cache snapshot — never a struct dump):
//
//   header   8 B   magic  "DMMCONFG"
//            4 B   format version (kConfigArtifactVersion)
//            8 B   config count N (>= 1)
//   N records, kConfigRecordBytes each:
//            8 B   alloc::hash_value of the vector (self-check)
//           15 B   one leaf index per decision tree, all_trees() order
//            8 B   chunk_bytes            |
//            8 B   big_request_bytes      |
//            8 B   static_pool_bytes      | numeric knobs
//            8 B   deferred_split_min     |
//            4 B   max_class_log2         |
//   footer   8 B   FNV-1a checksum of every preceding byte
//
// The loader treats the file as untrusted input with the same all-or-
// nothing discipline as the cache snapshot (cache_snapshot.h): bad magic,
// unknown version, a size that disagrees with the count, a checksum
// mismatch, an out-of-range leaf, a hash that disagrees with the decoded
// vector, or a vector the manager synthesiser rejects — any one of them
// rejects the whole file with a reason and yields no configs at all.
// Unlike a cache snapshot, a config artifact IS a correctness input (it
// decides the deployed layout), which is exactly why nothing partial may
// ever come out of a damaged one.
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kConfigArtifactMagic[8] = {'D', 'M', 'M', 'C',
                                                         'O', 'N', 'F', 'G'};
inline constexpr std::uint32_t kConfigArtifactVersion = 1;
inline constexpr std::size_t kConfigArtifactHeaderBytes = 8 + 4 + 8;
inline constexpr std::size_t kConfigRecordBytes = 8 + 15 + (4 * 8 + 4);
inline constexpr std::size_t kConfigArtifactChecksumBytes = 8;

/// What load_config_artifact made of a file.  `configs` is empty whenever
/// `loaded` is false; `reason` says why.
struct ConfigArtifactLoadResult {
  bool loaded = false;
  std::vector<alloc::DmmConfig> configs;  ///< phase order, >= 1 when loaded
  std::string reason;
};

/// What save_config_artifact did.  The write is atomic (temp + rename), so
/// a concurrent loader never observes a torn artifact.
struct ConfigArtifactSaveResult {
  bool saved = false;
  std::string reason;
};

/// Writes @p configs (>= 1, phase order) to @p path in the format above.
[[nodiscard]] ConfigArtifactSaveResult save_config_artifact(
    const std::string& path, const std::vector<alloc::DmmConfig>& configs);

/// Loads and fully validates an artifact; all-or-nothing (see above).
[[nodiscard]] ConfigArtifactLoadResult load_config_artifact(
    const std::string& path);

}  // namespace dmm::runtime

#endif  // DMM_RUNTIME_CONFIG_ARTIFACT_H
