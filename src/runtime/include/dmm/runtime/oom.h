#ifndef DMM_RUNTIME_OOM_H
#define DMM_RUNTIME_OOM_H

#include <cstddef>
#include <functional>

namespace dmm::runtime {

// ---------------------------------------------------------------------------
// Out-of-memory policy of the deployable runtime front.
//
// The policy core (alloc::CustomManager) reports exhaustion the way the
// simulator needs it to: allocate() returns nullptr and the replay counts a
// failed allocation.  A deployed allocator cannot stop there — real callers
// expect one of the three contracts production allocators actually ship:
//
//   kDie      the emalloc/die_oom contract: print the failed request to
//             stderr and abort().  For programs whose only sane answer to
//             exhaustion is a loud, immediate stop.
//   kNull     the plain malloc contract: return nullptr and keep the
//             allocator fully usable for smaller requests and frees.
//   kCallback a release-and-retry hook: the callback may free memory
//             through the allocator (caches, pools, low-priority buffers)
//             and asks for another attempt by returning true.
// ---------------------------------------------------------------------------

enum class OomPolicy {
  kDie,       ///< report the failed request on stderr, then abort()
  kNull,      ///< return nullptr; the allocator stays usable
  kCallback,  ///< invoke OomCallback; retry while it returns true
};

/// Invoked (without any allocator lock held, so it may call back into the
/// allocator to free memory) when an allocation of @p bytes found the arena
/// exhausted even after the calling thread's cache was reclaimed.
/// @p attempt counts invocations for this one allocation, starting at 1.
/// Return true to retry the allocation, false to give up (nullptr).
using OomCallback = std::function<bool(std::size_t bytes, unsigned attempt)>;

}  // namespace dmm::runtime

#endif  // DMM_RUNTIME_OOM_H
