// The design-to-deployment artifact (format in config_artifact.h).
//
// Mirrors the cache-snapshot implementation discipline on purpose:
//   * all-or-nothing untrusted-input loading — any anomaly (magic, version,
//     size/count disagreement, checksum, leaf range, hash self-check, a
//     vector CustomManager would refuse) rejects the whole file;
//   * atomic saves — temp file next to the target, renamed over it;
//   * fixed-width little-endian records written byte by byte, never a
//     struct dump, so the format is independent of padding and endianness.
//
// The difference in *stakes* is documented in the header: a snapshot is an
// accelerator, an artifact is the deployed layout itself.

#include "dmm/runtime/config_artifact.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "dmm/alloc/config_rules.h"
#include "dmm/core/cache_snapshot.h"
#include "dmm/core/design_space.h"

namespace dmm::runtime {

namespace {

// ---- little-endian primitives over a byte buffer --------------------------

void put_u8(std::vector<std::uint8_t>& buf, std::uint8_t v) {
  buf.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// ---- record layout --------------------------------------------------------

void put_record(std::vector<std::uint8_t>& buf,
                const alloc::DmmConfig& cfg) {
  put_u64(buf, static_cast<std::uint64_t>(alloc::hash_value(cfg)));
  for (const core::TreeId t : core::all_trees()) {
    put_u8(buf, static_cast<std::uint8_t>(core::get_leaf(cfg, t)));
  }
  put_u64(buf, cfg.chunk_bytes);
  put_u64(buf, cfg.big_request_bytes);
  put_u64(buf, cfg.static_pool_bytes);
  put_u64(buf, cfg.deferred_split_min);
  put_u32(buf, cfg.max_class_log2);
}

/// Parses one record; false when a leaf index is out of range or the
/// stored hash disagrees with the reconstructed vector.
bool get_record(const std::uint8_t* p, alloc::DmmConfig* out) {
  const std::uint64_t stored_hash = get_u64(p);
  p += 8;
  alloc::DmmConfig cfg;
  for (const core::TreeId t : core::all_trees()) {
    const int leaf = *p++;
    if (leaf >= core::leaf_count(t)) return false;
    core::set_leaf(cfg, t, leaf);
  }
  cfg.chunk_bytes = static_cast<std::size_t>(get_u64(p));
  p += 8;
  cfg.big_request_bytes = static_cast<std::size_t>(get_u64(p));
  p += 8;
  cfg.static_pool_bytes = static_cast<std::size_t>(get_u64(p));
  p += 8;
  cfg.deferred_split_min = static_cast<std::size_t>(get_u64(p));
  p += 8;
  cfg.max_class_log2 = get_u32(p);
  if (static_cast<std::uint64_t>(alloc::hash_value(cfg)) != stored_hash) {
    return false;
  }
  *out = cfg;
  return true;
}

/// Reads the whole file into @p out; false when it cannot be opened/read.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return false;
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::rewind(f);
  out->resize(static_cast<std::size_t>(size));
  const std::size_t read =
      size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  return read == out->size();
}

}  // namespace

ConfigArtifactSaveResult save_config_artifact(
    const std::string& path, const std::vector<alloc::DmmConfig>& configs) {
  ConfigArtifactSaveResult result;
  if (configs.empty()) {
    result.reason = "refusing to write an artifact with no configs";
    return result;
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (const auto why = alloc::unsupported_reason(configs[i])) {
      result.reason = "config " + std::to_string(i) +
                      " is not a deployable vector: " + *why;
      return result;
    }
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(kConfigArtifactHeaderBytes +
              configs.size() * kConfigRecordBytes +
              kConfigArtifactChecksumBytes);
  buf.insert(buf.end(), std::begin(kConfigArtifactMagic),
             std::end(kConfigArtifactMagic));
  put_u32(buf, kConfigArtifactVersion);
  put_u64(buf, configs.size());
  for (const alloc::DmmConfig& cfg : configs) put_record(buf, cfg);
  put_u64(buf, core::snapshot_checksum(buf.data(), buf.size()));

  // Unique temp name next to the target (atomic rename; concurrent savers
  // last-writer-win and a loader never sees a torn file).
  static std::atomic<std::uint64_t> save_seq{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(save_seq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    result.reason = "cannot open temp file " + tmp;
    return result;
  }
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    result.reason = "short write to " + tmp;
    return result;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    result.reason = "rename to " + path + " failed";
    return result;
  }
  result.saved = true;
  return result;
}

ConfigArtifactLoadResult load_config_artifact(const std::string& path) {
  ConfigArtifactLoadResult result;
  std::vector<std::uint8_t> buf;
  if (!read_file(path, &buf)) {
    result.reason = "cannot read " + path;
    return result;
  }
  if (buf.size() <
      kConfigArtifactHeaderBytes + kConfigArtifactChecksumBytes) {
    result.reason = "file shorter than header";
    return result;
  }
  if (std::memcmp(buf.data(), kConfigArtifactMagic,
                  sizeof(kConfigArtifactMagic)) != 0) {
    result.reason = "bad magic";
    return result;
  }
  const std::uint32_t version = get_u32(buf.data() + 8);
  if (version != kConfigArtifactVersion) {
    result.reason = "unsupported artifact version " + std::to_string(version);
    return result;
  }
  const std::uint64_t count = get_u64(buf.data() + 12);
  // Validate by division, not by multiplying the count out (a crafted
  // count must not wrap the size arithmetic).
  const std::size_t body =
      buf.size() - kConfigArtifactHeaderBytes - kConfigArtifactChecksumBytes;
  if (body % kConfigRecordBytes != 0 || count != body / kConfigRecordBytes) {
    result.reason = "truncated: " + std::to_string(buf.size()) +
                    " bytes for " + std::to_string(count) + " configs";
    return result;
  }
  if (count == 0) {
    result.reason = "artifact carries no configs";
    return result;
  }
  const std::uint64_t stored_sum =
      get_u64(buf.data() + buf.size() - kConfigArtifactChecksumBytes);
  if (core::snapshot_checksum(buf.data(),
                              buf.size() - kConfigArtifactChecksumBytes) !=
      stored_sum) {
    result.reason = "checksum mismatch";
    return result;
  }

  // Decode and validate every record before publishing any (all-or-nothing).
  std::vector<alloc::DmmConfig> configs(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_record(
            buf.data() + kConfigArtifactHeaderBytes + i * kConfigRecordBytes,
            &configs[i])) {
      result.reason = "corrupt record " + std::to_string(i);
      return result;
    }
    if (const auto why = alloc::unsupported_reason(configs[i])) {
      result.reason = "record " + std::to_string(i) +
                      " is not a deployable vector: " + *why;
      return result;
    }
  }
  result.loaded = true;
  result.configs = std::move(configs);
  return result;
}

}  // namespace dmm::runtime
