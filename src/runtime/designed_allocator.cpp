// DesignedAllocator — the deployable front over the designed policy core.
//
// Locking model (acquisition order; a later lock is never held while taking
// an earlier one):
//
//   registry mutex  — process-wide; guards every allocator's cache roster
//                     and cache ownership hand-off at thread/allocator exit
//   ThreadCache::mu — one per thread cache; the owning thread's fast path
//                     plus the teardown paths that drain someone else's
//   core_mu_        — serialises the single-threaded policy core and its
//                     arena (including the stats read of telemetry())
//
// Shard mutexes (pointer bookkeeping) are strict leaves: taken with no
// other lock held and released before acquiring anything.
//
// Thread-cache lifetime: a cache is created by its thread on first use,
// registered with the allocator, and deleted by its thread at exit (the
// thread_local holder).  Whoever ends first cleans up — a thread exiting
// while the allocator lives flushes its blocks back into the core; an
// allocator destructed first drains every cache and orphans them
// (owner = nullptr) for their threads to delete later.

#include "dmm/runtime/designed_allocator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "dmm/alloc/knobs.h"
#include "dmm/alloc/size_class.h"

namespace dmm::runtime {

namespace {

/// `requested` value of a BlockInfo while the block sits in a thread cache
/// (live in the core's eyes, dead in the application's).
constexpr std::size_t kCachedSentinel = static_cast<std::size_t>(-1);

[[noreturn]] void die(const char* what, const void* ptr) {
  std::fprintf(stderr, "DesignedAllocator: %s (ptr=%p)\n", what, ptr);
  std::abort();
}

/// Largest size-class index whose class size the capacity covers: every
/// entry filed in bin b can serve any request of class b (capacity >=
/// size_of(b) >= request).  Requires capacity >= size_of(0).
unsigned bin_for_capacity(std::size_t capacity) {
  unsigned idx = alloc::SizeClass::index_for(capacity);
  if (alloc::SizeClass::size_of(idx) > capacity) --idx;
  return idx;
}

}  // namespace

// ---------------------------------------------------------------------------
// Thread-cache plumbing
// ---------------------------------------------------------------------------

struct DesignedAllocator::ThreadCache {
  std::mutex mu;
  /// Guarded by the registry mutex AND mu (writers hold both, readers
  /// hold either): which allocator drains into at thread exit.
  DesignedAllocator* owner = nullptr;
  /// bins[b] holds (ptr, capacity) with capacity >= SizeClass::size_of(b).
  std::array<std::vector<std::pair<void*, std::size_t>>,
             alloc::SizeClass::kCount>
      bins;
  std::size_t cached_bytes = 0;  ///< sum of cached capacities; under mu
};

struct ThreadCacheRegistry {
  /// Process-wide teardown lock.  Leaked deliberately: threads may still
  /// run their thread_local destructors after static destruction begins.
  static std::mutex& mutex() {
    static std::mutex* mu = new std::mutex;
    return *mu;
  }

  struct TlsHolder {
    std::vector<DesignedAllocator::ThreadCache*> caches;

    ~TlsHolder() {
      const std::lock_guard<std::mutex> reg(mutex());
      for (DesignedAllocator::ThreadCache* c : caches) {
        DesignedAllocator* owner = c->owner;
        if (owner != nullptr) {
          // Thread exits first: its cached blocks go back to the core.
          owner->flush_cache(*c);
          auto& roster = owner->caches_;
          roster.erase(std::remove(roster.begin(), roster.end(), c),
                       roster.end());
        }
        // Allocator already gone (owner nulled): the entries died with
        // its arena; only the cache shell is left to delete.
        delete c;
      }
    }
  };

  static TlsHolder& tls() {
    thread_local TlsHolder holder;
    return holder;
  }
};

DesignedAllocator::ThreadCache* DesignedAllocator::this_thread_cache() {
  if (opts_.thread_cache_bytes == 0) return nullptr;
  ThreadCacheRegistry::TlsHolder& holder = ThreadCacheRegistry::tls();
  for (ThreadCache* c : holder.caches) {
    const std::lock_guard<std::mutex> lock(c->mu);
    if (c->owner == this) return c;
  }
  auto* c = new ThreadCache;
  c->owner = this;
  {
    const std::lock_guard<std::mutex> reg(ThreadCacheRegistry::mutex());
    caches_.push_back(c);
  }
  holder.caches.push_back(c);
  return c;
}

// ---------------------------------------------------------------------------

DesignedAllocator::DesignedAllocator(const alloc::DmmConfig& cfg,
                                     RuntimeOptions opts)
    : opts_(std::move(opts)),
      arena_(opts_.arena_capacity_bytes),
      core_(arena_, cfg, "designed-runtime", /*strict_accounting=*/false),
      cache_block_limit_(std::min(
          {alloc::HardKnobs(core_.config()).big_request_bytes(),
           opts_.thread_cache_bytes,
           alloc::SizeClass::size_of(alloc::SizeClass::kCount - 1)})) {}

DesignedAllocator::~DesignedAllocator() {
  const std::lock_guard<std::mutex> reg(ThreadCacheRegistry::mutex());
  for (ThreadCache* c : caches_) {
    flush_cache(*c);
    const std::lock_guard<std::mutex> lock(c->mu);
    c->owner = nullptr;  // its thread deletes the shell at exit
  }
  caches_.clear();
}

DesignedAllocator::Shard& DesignedAllocator::shard_for(const void* p) const {
  // dmm-lint: allow(ptr-order): shard selection hashes the address; no ordering is derived
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  // Drop the alignment zeroes, then golden-ratio mix so neighbouring
  // blocks spread across shards.
  const std::uintptr_t h = (addr >> 3) * 0x9e3779b97f4a7c15ULL;
  return shards_[(h >> 32) & (kShardCount - 1)];
}

// ---------------------------------------------------------------------------
// malloc / free / realloc / usable_size
// ---------------------------------------------------------------------------

void* DesignedAllocator::malloc(std::size_t bytes) {
  const std::size_t request = bytes == 0 ? 1 : bytes;
  ThreadCache* cache = this_thread_cache();
  if (cache != nullptr) {
    if (void* p = cache_pop(*cache, request)) {
      Shard& sh = shard_for(p);
      {
        const std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(p);
        if (it == sh.map.end() || it->second.requested != kCachedSentinel) {
          die("thread cache handed out an untracked block", p);
        }
        it->second.requested = request;
      }
      telemetry_.note_alloc(request, /*from_cache=*/true);
      return p;
    }
  }
  return slow_malloc(request, cache);
}

void* DesignedAllocator::slow_malloc(std::size_t request, ThreadCache* cache) {
  std::size_t capacity = 0;
  void* p = core_allocate(request, &capacity);
  if (p == nullptr && cache != nullptr) {
    // Reclaim before any policy fires: the calling thread's own cache may
    // hold exactly the memory the core needs.
    flush_cache(*cache);
    p = core_allocate(request, &capacity);
  }
  if (p == nullptr) p = handle_oom(request, &capacity);
  if (p == nullptr) return nullptr;
  Shard& sh = shard_for(p);
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    if (!sh.map.emplace(p, BlockInfo{capacity, request}).second) {
      die("core handed out a live pointer twice", p);
    }
  }
  telemetry_.note_alloc(request, /*from_cache=*/false);
  return p;
}

void* DesignedAllocator::core_allocate(std::size_t request,
                                       std::size_t* capacity) {
  const std::lock_guard<std::mutex> lock(core_mu_);
  if (consume_injected_failure()) return nullptr;
  void* p = core_.allocate(request);
  if (p != nullptr) *capacity = core_.usable_size(p);
  return p;
}

void* DesignedAllocator::handle_oom(std::size_t request,
                                    std::size_t* capacity) {
  switch (opts_.oom_policy) {
    case OomPolicy::kDie: {
      telemetry_.note_oom_died();
      // The emalloc/die_oom contract: report the failed request, stop.
      std::fprintf(stderr,
                   "DesignedAllocator: out of memory allocating %zu bytes "
                   "(arena capacity %zu)\n",
                   request, arena_.capacity());
      std::abort();
    }
    case OomPolicy::kNull:
      telemetry_.note_oom_null();
      return nullptr;
    case OomPolicy::kCallback: {
      // No lock is held here: the callback may free() through this
      // allocator (release-and-retry) or call trim() itself.
      for (unsigned attempt = 1;
           opts_.oom_callback && attempt <= opts_.oom_retry_limit;
           ++attempt) {
        telemetry_.note_oom_callback();
        if (!opts_.oom_callback(request, attempt)) break;
        if (void* p = core_allocate(request, capacity)) {
          telemetry_.note_oom_recovered();
          return p;
        }
      }
      telemetry_.note_oom_null();
      return nullptr;
    }
  }
  return nullptr;
}

void DesignedAllocator::free(void* ptr) {
  if (ptr == nullptr) return;
  std::size_t capacity = 0;
  std::size_t requested = 0;
  ThreadCache* cache = this_thread_cache();
  bool to_cache = false;
  {
    Shard& sh = shard_for(ptr);
    const std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(ptr);
    if (it == sh.map.end()) {
      die("free of a pointer this allocator does not own "
          "(wild or double free)",
          ptr);
    }
    if (it->second.requested == kCachedSentinel) {
      die("double free of a cached block", ptr);
    }
    capacity = it->second.capacity;
    requested = it->second.requested;
    to_cache = cache != nullptr && cacheable(capacity);
    if (to_cache) {
      it->second.requested = kCachedSentinel;
    } else {
      sh.map.erase(it);
    }
  }
  telemetry_.note_free(requested);
  if (to_cache) {
    cache_push(*cache, ptr, capacity);
    return;
  }
  const std::lock_guard<std::mutex> lock(core_mu_);
  core_.deallocate(ptr);
}

void* DesignedAllocator::realloc(void* ptr, std::size_t bytes) {
  telemetry_.note_realloc();
  if (ptr == nullptr) return malloc(bytes);
  if (bytes == 0) {
    free(ptr);
    return nullptr;
  }
  std::size_t old_requested = 0;
  {
    Shard& sh = shard_for(ptr);
    const std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(ptr);
    if (it == sh.map.end() || it->second.requested == kCachedSentinel) {
      die("realloc of a pointer this allocator does not own", ptr);
    }
    if (it->second.capacity >= bytes) {
      // In place: the core's grant already covers the new size.
      old_requested = it->second.requested;
      it->second.requested = bytes;
      telemetry_.note_resize(old_requested, bytes);
      return ptr;
    }
    old_requested = it->second.requested;
  }
  void* moved = malloc(bytes);
  if (moved == nullptr) return nullptr;  // old block stays intact
  std::memcpy(moved, ptr, std::min(old_requested, bytes));
  free(ptr);
  return moved;
}

std::size_t DesignedAllocator::usable_size(const void* ptr) const {
  if (ptr == nullptr) return 0;
  Shard& sh = shard_for(ptr);
  const std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(ptr);
  if (it == sh.map.end() || it->second.requested == kCachedSentinel) {
    return 0;
  }
  return it->second.capacity;
}

// ---------------------------------------------------------------------------
// Telemetry, trim, fault injection
// ---------------------------------------------------------------------------

TelemetrySnapshot DesignedAllocator::telemetry() const {
  TelemetrySnapshot s = telemetry_.snapshot();
  const std::lock_guard<std::mutex> lock(core_mu_);
  s.arena = arena_.stats();
  return s;
}

void DesignedAllocator::trim() {
  if (ThreadCache* cache = this_thread_cache()) flush_cache(*cache);
}

void DesignedAllocator::inject_arena_exhaustion(std::uint64_t failures) {
  injected_failures_.store(failures, std::memory_order_relaxed);
}

bool DesignedAllocator::consume_injected_failure() {
  std::uint64_t n = injected_failures_.load(std::memory_order_relaxed);
  while (n > 0 && !injected_failures_.compare_exchange_weak(
                      n, n - 1, std::memory_order_relaxed)) {
  }
  return n > 0;
}

// ---------------------------------------------------------------------------
// Thread-cache mechanics
// ---------------------------------------------------------------------------

bool DesignedAllocator::cacheable(std::size_t capacity) const {
  return capacity >= alloc::SizeClass::size_of(0) &&
         capacity < cache_block_limit_;
}

void DesignedAllocator::cache_push(ThreadCache& cache, void* ptr,
                                   std::size_t capacity) {
  std::vector<void*> evicted;
  {
    const std::lock_guard<std::mutex> lock(cache.mu);
    auto& bin = cache.bins[bin_for_capacity(capacity)];
    bin.emplace_back(ptr, capacity);
    cache.cached_bytes += capacity;
    // Per-bin entry cap: evict the oldest of this bin beyond it.
    if (bin.size() > opts_.thread_cache_bin_entries) {
      const std::size_t drop = bin.size() - opts_.thread_cache_bin_entries;
      for (std::size_t i = 0; i < drop; ++i) {
        evicted.push_back(bin[i].first);
        cache.cached_bytes -= bin[i].second;
      }
      bin.erase(bin.begin(), bin.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    // Byte budget: shed the largest cached blocks first.
    for (std::size_t b = cache.bins.size();
         b-- > 0 && cache.cached_bytes > opts_.thread_cache_bytes;) {
      auto& shed = cache.bins[b];
      while (!shed.empty() &&
             cache.cached_bytes > opts_.thread_cache_bytes) {
        evicted.push_back(shed.front().first);
        cache.cached_bytes -= shed.front().second;
        shed.erase(shed.begin());
      }
    }
  }
  if (evicted.empty()) return;
  for (void* p : evicted) {
    Shard& sh = shard_for(p);
    const std::lock_guard<std::mutex> lock(sh.mu);
    sh.map.erase(p);
  }
  release_to_core(evicted);
}

void* DesignedAllocator::cache_pop(ThreadCache& cache, std::size_t request) {
  if (request >= cache_block_limit_) return nullptr;
  const unsigned bin_idx = alloc::SizeClass::index_for(request);
  if (bin_idx >= cache.bins.size()) return nullptr;
  const std::lock_guard<std::mutex> lock(cache.mu);
  auto& bin = cache.bins[bin_idx];
  if (bin.empty()) return nullptr;
  const auto [p, cap] = bin.back();
  bin.pop_back();
  cache.cached_bytes -= cap;
  return p;
}

void DesignedAllocator::flush_cache(ThreadCache& cache) {
  std::vector<void*> drained;
  {
    const std::lock_guard<std::mutex> lock(cache.mu);
    for (auto& bin : cache.bins) {
      for (const auto& entry : bin) drained.push_back(entry.first);
      bin.clear();
    }
    cache.cached_bytes = 0;
  }
  for (void* p : drained) {
    Shard& sh = shard_for(p);
    const std::lock_guard<std::mutex> lock(sh.mu);
    sh.map.erase(p);
  }
  release_to_core(drained);
}

void DesignedAllocator::release_to_core(const std::vector<void*>& ptrs) {
  if (ptrs.empty()) return;
  const std::lock_guard<std::mutex> lock(core_mu_);
  for (void* p : ptrs) core_.deallocate(p);
}

}  // namespace dmm::runtime
