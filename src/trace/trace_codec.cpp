#include "dmm/trace/trace_codec.h"

#include <limits>

namespace dmm::trace {

using core::AllocEvent;

void put_varint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(const std::uint8_t** p, const std::uint8_t* end,
                std::uint64_t* v) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  const std::uint8_t* q = *p;
  while (q != end) {
    const std::uint8_t byte = *q++;
    if (shift == 63 && (byte & 0x7eu) != 0) return false;  // > 64 bits
    if (shift > 63) return false;
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      *p = q;
      *v = value;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated
}

void encode_block(const AllocEvent* events, std::size_t n,
                  std::vector<std::uint8_t>* payload) {
  payload->clear();
  // Column 1: op bitmap (bit set = free), packed little-endian per byte.
  payload->resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (events[i].op == AllocEvent::Op::kFree) {
      (*payload)[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  // Column 2: id deltas.
  std::int64_t prev_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t id = events[i].id;
    put_varint(payload, zigzag_encode(id - prev_id));
    prev_id = id;
  }
  // Column 3: size deltas, alloc events only.
  std::int64_t prev_size = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (events[i].op != AllocEvent::Op::kAlloc) continue;
    const std::int64_t size = events[i].size;
    put_varint(payload, zigzag_encode(size - prev_size));
    prev_size = size;
  }
  // Column 4: phase runs (length, zigzag delta from the previous run).
  std::size_t i = 0;
  std::int64_t prev_phase = 0;
  while (i < n) {
    const std::uint16_t phase = events[i].phase;
    std::size_t j = i + 1;
    while (j < n && events[j].phase == phase) ++j;
    put_varint(payload, j - i);
    put_varint(payload, zigzag_encode(phase - prev_phase));
    prev_phase = phase;
    i = j;
  }
}

bool decode_block(const std::uint8_t* payload, std::size_t payload_bytes,
                  std::size_t n, AllocEvent* out) {
  const std::uint8_t* p = payload;
  const std::uint8_t* const end = payload + payload_bytes;
  const std::size_t bitmap_bytes = (n + 7) / 8;
  if (static_cast<std::size_t>(end - p) < bitmap_bytes) return false;
  const std::uint8_t* const bitmap = p;
  p += bitmap_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_free = (bitmap[i / 8] >> (i % 8)) & 1u;
    out[i].op = is_free ? AllocEvent::Op::kFree : AllocEvent::Op::kAlloc;
  }
  std::int64_t prev_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    if (!get_varint(&p, end, &raw)) return false;
    const std::int64_t id = prev_id + zigzag_decode(raw);
    if (id < 0 || id > std::numeric_limits<std::uint32_t>::max()) return false;
    out[i].id = static_cast<std::uint32_t>(id);
    prev_id = id;
  }
  std::int64_t prev_size = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].op != AllocEvent::Op::kAlloc) {
      out[i].size = 0;
      continue;
    }
    std::uint64_t raw = 0;
    if (!get_varint(&p, end, &raw)) return false;
    const std::int64_t size = prev_size + zigzag_decode(raw);
    if (size < 0 || size > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    out[i].size = static_cast<std::uint32_t>(size);
    prev_size = size;
  }
  std::size_t i = 0;
  std::int64_t prev_phase = 0;
  while (i < n) {
    std::uint64_t run = 0;
    std::uint64_t raw = 0;
    if (!get_varint(&p, end, &run)) return false;
    if (!get_varint(&p, end, &raw)) return false;
    if (run == 0 || run > n - i) return false;
    const std::int64_t phase = prev_phase + zigzag_decode(raw);
    if (phase < 0 || phase > std::numeric_limits<std::uint16_t>::max()) {
      return false;
    }
    for (std::uint64_t k = 0; k < run; ++k, ++i) {
      out[i].phase = static_cast<std::uint16_t>(phase);
    }
    prev_phase = phase;
  }
  return p == end;  // trailing garbage rejects the block
}

}  // namespace dmm::trace
