#ifndef DMM_TRACE_TRACE_SAMPLE_H
#define DMM_TRACE_TRACE_SAMPLE_H

#include <cstdint>
#include <vector>

#include "dmm/core/trace.h"

namespace dmm::trace {

/// Stratified trace down-sampling for bounded-budget search.
///
/// Objects (alloc/free pairs) are stratified by (power-of-two size class,
/// allocation phase) and kept with a per-stratum Bernoulli inclusion
/// probability: proportional to the budget, floored so rare strata — the
/// occasional huge allocation that dominates the peak — stay represented
/// instead of vanishing from a uniform sample.  Inclusion is a
/// deterministic hash of (seed, object id), so a given (source, budget,
/// seed) always yields the same sample, on any thread count.
///
/// The peak estimate is Horvitz-Thompson: each kept object counts as
/// size / p_stratum toward live bytes, making the estimated peak unbiased
/// per stratum; the reported error bound is two estimated standard errors
/// at the peak (Bernoulli variance, estimated from the sample itself).
/// The bound is a *pointwise* bound at the sample-estimated peak
/// instant.  Taking the running maximum of a noisy trajectory biases
/// the estimate upward, and on very long traces (tens of millions of
/// events) the realized error can exceed the pointwise bound.  The
/// intended workflow — run the search on the sample, then validate the
/// winner on the full trace — absorbs this: the bound is a sanity
/// check that the sample was dense enough to trust the search's
/// ranking, never a substitute for full-trace validation.
///
/// Memory is O(strata + concurrently-live sampled objects): two streaming
/// passes over the source, never a per-object table of the population.

struct SampleOptions {
  /// Target sampled event count (approximate; a kept object contributes
  /// its alloc and its free).  0 means keep everything.
  std::uint64_t budget = 0;
  std::uint64_t seed = 1;
  /// Per-stratum floor: strata with at most this many objects are kept
  /// whole; larger ones never drop below ~this expected count.
  std::uint64_t min_per_stratum = 64;
};

struct StratumReport {
  unsigned size_class = 0;   ///< alloc::SizeClass::index_for of the size
  std::uint16_t phase = 0;   ///< phase of the allocation event
  std::uint64_t objects = 0; ///< population objects in this stratum
  std::uint64_t sampled = 0; ///< objects the sample kept
  double rate = 0.0;         ///< inclusion probability applied
};

struct SampleResult {
  /// The sampled trace: original sizes and phases, ids renumbered densely
  /// in first-kept order.  Always validate()-clean.
  core::AllocTrace trace;
  std::uint64_t population_events = 0;
  std::uint64_t sampled_objects = 0;
  /// Horvitz-Thompson estimate of the population's peak live bytes, taken
  /// at the sample-estimated peak instant.
  double estimated_peak_bytes = 0.0;
  /// Estimated standard error of that estimate.
  double peak_stderr_bytes = 0.0;
  /// Two standard errors, relative to the estimate (0 when exact).
  double peak_relative_error_bound = 0.0;
  std::vector<StratumReport> strata;  ///< sorted by (size_class, phase)
};

[[nodiscard]] SampleResult sample_trace(const core::TraceSource& source,
                                        const SampleOptions& opts);

/// Convenience overload: budget + seed, default stratum floor.
[[nodiscard]] SampleResult sample_trace(const core::TraceSource& source,
                                        std::uint64_t budget,
                                        std::uint64_t seed = 1);

}  // namespace dmm::trace

#endif  // DMM_TRACE_TRACE_SAMPLE_H
