#ifndef DMM_TRACE_TRACE_CODEC_H
#define DMM_TRACE_TRACE_CODEC_H

#include <cstdint>
#include <vector>

#include "dmm/core/trace.h"

namespace dmm::trace {

/// Columnar event-block codec for the DMMT trace format (trace_store.h).
///
/// A block's payload holds the same events column by column instead of
/// record by record, because each column is individually tame:
///
///   ops     1 bit/event (bitmap; 1 = free)
///   ids     zigzag varint deltas — workload traces number objects almost
///           sequentially, so deltas hover near +-1
///   sizes   zigzag varint deltas between consecutive *alloc* events only
///           (frees carry size 0 by construction and encode nothing)
///   phases  run-length encoded (run length, zigzag phase delta) — phases
///           change a handful of times per million events
///
/// Every block is self-contained (deltas restart from 0), so a cursor can
/// decode any block straight off the index without touching its
/// predecessors.  Decoding is fully bounds-checked: a payload that runs
/// short, overruns, or disagrees with the declared event count is rejected
/// (decode_block returns false) rather than trusted.

/// Appends @p v LEB128-style (7 bits per byte, high bit = continue).
void put_varint(std::vector<std::uint8_t>* out, std::uint64_t v);

/// Reads one varint from [*p, end); advances *p.  False on truncation or
/// a value wider than 64 bits.
[[nodiscard]] bool get_varint(const std::uint8_t** p, const std::uint8_t* end,
                              std::uint64_t* v);

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Encodes @p n events into @p payload (cleared first).  Free events are
/// encoded as size 0 regardless of their in-memory size field; writers
/// normalize before fingerprinting so file identity matches the decoded
/// stream (see TraceWriter::add).
void encode_block(const core::AllocEvent* events, std::size_t n,
                  std::vector<std::uint8_t>* payload);

/// Decodes exactly @p n events from @p payload into @p out (capacity >= n).
/// False if the payload is malformed: truncated columns, varint overruns,
/// trailing bytes, or field values wider than the event fields.
[[nodiscard]] bool decode_block(const std::uint8_t* payload,
                                std::size_t payload_bytes, std::size_t n,
                                core::AllocEvent* out);

}  // namespace dmm::trace

#endif  // DMM_TRACE_TRACE_CODEC_H
