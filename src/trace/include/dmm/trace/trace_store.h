#ifndef DMM_TRACE_TRACE_STORE_H
#define DMM_TRACE_TRACE_STORE_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dmm/core/trace.h"

namespace dmm::trace {

/// The DMMT on-disk trace format: versioned, mmap-able, columnar.
///
/// Byte layout (all integers little-endian):
///
///   header (88 bytes)
///     u32 magic "DMMT"         u32 version
///     u64 event_count          u64 fingerprint
///     u32 block_events         u32 block_count
///     u64 index_offset         u64 stats_offset
///     u64 file_bytes           u32 max_id        u32 reserved
///     u64 alloc_count          u64 reserved2
///     u64 header_checksum      (FNV-1a over bytes [0, 80))
///   event blocks (block_count, back to back from offset 88)
///     u32 payload_bytes        u32 events_in_block
///     payload                  (columnar codec, trace_codec.h)
///     u64 block_checksum       (FNV-1a over prefix + payload)
///   stats blob (at stats_offset)
///     u32 blob_bytes  u32 reserved  payload  u64 checksum
///   block index (at index_offset)
///     u32 entry_count  u32 reserved
///     { u64 offset, u64 first_event, u32 events, u32 reserved } ...
///     u64 index_checksum
///
/// Integrity discipline matches cache_snapshot.h: the reader trusts
/// nothing.  open() rejects — whole, with a reason — a missing or short
/// file, a bad magic, a future version, a header/stats/index checksum
/// mismatch, a declared size that disagrees with the actual file, an
/// index that is non-monotone or points outside the block region, and
/// any block whose checksum or declared coverage is wrong.  A trace that
/// opens is structurally sound end to end; block payloads are decoded
/// lazily per cursor with fully bounds-checked column parsing.
///
/// The header carries the event-stream fingerprint (same definition as
/// AllocTrace::fingerprint), the full TraceStats, and the id bounds, so
/// identity and profiling are O(1) after open.

inline constexpr std::uint32_t kTraceMagic = 0x544d4d44u;  // "DMMT"
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint32_t kDefaultBlockEvents = 4096;
inline constexpr std::size_t kTraceHeaderBytes = 88;

/// Streams events into a DMMT file in one pass: blocks are encoded and
/// written as they fill, stats/fingerprint accumulate alongside, and
/// finish() appends the stats blob and block index, back-patches the
/// header, and atomically renames a ".tmp" into place — a crash never
/// leaves a torn .dmmt behind.  Writer memory is O(block + live objects
/// + distinct sizes), independent of total event count.
class TraceWriter {
 public:
  struct Options {
    std::uint32_t block_events = kDefaultBlockEvents;
  };

  /// Opens @p path for writing (via a ".tmp" sibling).  Null + @p why on
  /// I/O failure.
  [[nodiscard]] static std::unique_ptr<TraceWriter> create(
      const std::string& path, const Options& opts,
      std::string* why = nullptr);
  [[nodiscard]] static std::unique_ptr<TraceWriter> create(
      const std::string& path, std::string* why = nullptr);

  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one event.  Free events are normalized to size 0 *before*
  /// fingerprinting, so the file's identity always equals the identity of
  /// its decoded stream.
  void add(core::AllocEvent e);

  [[nodiscard]] std::uint64_t events() const { return acc_.events(); }

  /// Flushes, finalizes, and renames into place.  False + @p why on I/O
  /// failure (the temp file is removed).  Idempotent; the destructor
  /// calls it best-effort if the caller did not.
  bool finish(std::string* why = nullptr);

 private:
  TraceWriter(std::FILE* f, std::string path, std::string tmp_path,
              Options opts);
  bool flush_block();
  bool abort_write();

  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint64_t first_event = 0;
    std::uint32_t events = 0;
  };

  std::FILE* f_ = nullptr;
  std::string path_;
  std::string tmp_path_;
  Options opts_;
  core::TraceAccumulator acc_;
  std::vector<core::AllocEvent> buf_;
  std::vector<std::uint8_t> payload_;
  std::vector<IndexEntry> index_;
  std::uint64_t next_offset_ = kTraceHeaderBytes;
  bool finished_ = false;
  bool failed_ = false;
};

/// Read side: memory-maps a DMMT file and serves it as a TraceSource.
/// event_count / fingerprint / stats / id_bounds come straight from the
/// validated header; cursors decode one block at a time into a private
/// buffer, so any number of concurrent replays stream the same immutable
/// mapping with O(block) memory each.
class MappedTrace final : public core::TraceSource {
 public:
  /// Validates everything (see the format comment) before returning; a
  /// file that fails any check yields null and a reason in @p why.
  [[nodiscard]] static std::unique_ptr<MappedTrace> open(
      const std::string& path, std::string* why = nullptr);

  ~MappedTrace() override;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  [[nodiscard]] std::uint64_t event_count() const override {
    return event_count_;
  }
  [[nodiscard]] std::uint64_t fingerprint() const override {
    return fingerprint_;
  }
  [[nodiscard]] core::TraceStats stats() const override { return stats_; }
  [[nodiscard]] core::TraceIdBounds id_bounds() const override {
    return bounds_;
  }
  [[nodiscard]] std::unique_ptr<core::TraceCursor> cursor() const override;

  [[nodiscard]] std::uint32_t block_events() const { return block_events_; }
  [[nodiscard]] std::uint32_t block_count() const {
    return static_cast<std::uint32_t>(blocks_.size());
  }
  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }

  /// Bytes of decoded-event buffer one cursor holds: block_events x
  /// sizeof(AllocEvent), by construction independent of trace length —
  /// the block-cursor accounting bench_trace asserts.
  [[nodiscard]] std::size_t cursor_buffer_bytes() const {
    return static_cast<std::size_t>(block_events_) *
           sizeof(core::AllocEvent);
  }

  /// Re-verifies every block checksum AND fully decodes every block
  /// (trace_tool `info --check`).  open() already checksummed the blocks;
  /// this additionally proves each payload parses.
  [[nodiscard]] bool verify_blocks(std::string* why = nullptr) const;

  /// Decodes the whole file into an in-memory AllocTrace (the daemon's
  /// ingestion path for request-supplied .dmmt files).  Throws
  /// std::runtime_error on a payload that fails to decode.
  [[nodiscard]] core::AllocTrace materialize() const;

 private:
  friend class MappedCursor;
  struct BlockRef {
    std::uint64_t offset = 0;       ///< file offset of the block prefix
    std::uint64_t first_event = 0;
    std::uint32_t events = 0;
  };

  MappedTrace() = default;

  /// Decodes block @p b into @p out (capacity >= block_events_); throws
  /// std::runtime_error on malformed payload.
  void decode_block_at(std::size_t b, core::AllocEvent* out) const;

  const std::uint8_t* base_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint64_t event_count_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint32_t block_events_ = 0;
  core::TraceIdBounds bounds_;
  core::TraceStats stats_;
  std::vector<BlockRef> blocks_;
};

/// Encodes an in-memory trace to @p path.  False + @p why on failure.
bool write_trace_file(const core::AllocTrace& trace, const std::string& path,
                      const TraceWriter::Options& opts = {},
                      std::string* why = nullptr);

/// True iff the file starts with the DMMT magic (cheap sniff; open() still
/// validates everything).
[[nodiscard]] bool is_trace_file(const std::string& path);

}  // namespace dmm::trace

#endif  // DMM_TRACE_TRACE_STORE_H
