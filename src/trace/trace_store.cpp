#include "dmm/trace/trace_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dmm/core/cache_snapshot.h"
#include "dmm/trace/trace_codec.h"

namespace dmm::trace {

using core::AllocEvent;
using core::snapshot_checksum;

namespace {

void put_u32(std::vector<std::uint8_t>* b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>* b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double read_f64(const std::uint8_t* p) {
  const std::uint64_t bits = read_u64(p);
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void put_f64(std::vector<std::uint8_t>* b, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put_u64(b, bits);
}

bool set_why(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

/// Serializes TraceStats into the stats-blob payload.
std::vector<std::uint8_t> encode_stats(const core::TraceStats& s) {
  std::vector<std::uint8_t> out;
  put_u64(&out, s.events);
  put_u64(&out, s.allocs);
  put_u64(&out, s.frees);
  put_u64(&out, s.peak_live_bytes);
  put_u64(&out, s.peak_live_blocks);
  put_u64(&out, s.distinct_sizes);
  put_u32(&out, s.min_size);
  put_u32(&out, s.max_size);
  put_f64(&out, s.mean_size);
  put_f64(&out, s.mean_lifetime_events);
  put_u32(&out, s.phases);
  put_u32(&out, static_cast<std::uint32_t>(s.class_histogram.size()));
  for (const auto& [cls, count] : s.class_histogram) {
    put_u32(&out, cls);
    put_u64(&out, count);
  }
  put_u32(&out, static_cast<std::uint32_t>(s.top_sizes.size()));
  put_u32(&out, 0);  // reserved
  for (const auto& [size, count] : s.top_sizes) {
    put_u32(&out, size);
    put_u64(&out, count);
  }
  return out;
}

/// Bounds-checked stats-blob parse; false on any overrun or insane count.
bool decode_stats(const std::uint8_t* p, std::size_t len,
                  core::TraceStats* s) {
  const std::uint8_t* const end = p + len;
  const auto need = [&](std::size_t n) {
    return static_cast<std::size_t>(end - p) >= n;
  };
  if (!need(6 * 8 + 2 * 4 + 2 * 8 + 2 * 4)) return false;
  s->events = read_u64(p);
  p += 8;
  s->allocs = read_u64(p);
  p += 8;
  s->frees = read_u64(p);
  p += 8;
  s->peak_live_bytes = read_u64(p);
  p += 8;
  s->peak_live_blocks = read_u64(p);
  p += 8;
  s->distinct_sizes = read_u64(p);
  p += 8;
  s->min_size = read_u32(p);
  p += 4;
  s->max_size = read_u32(p);
  p += 4;
  s->mean_size = read_f64(p);
  p += 8;
  s->mean_lifetime_events = read_f64(p);
  p += 8;
  const std::uint32_t phases = read_u32(p);
  p += 4;
  if (phases > 0xffffu) return false;
  s->phases = static_cast<std::uint16_t>(phases);
  const std::uint32_t hist = read_u32(p);
  p += 4;
  if (hist > 4096) return false;
  for (std::uint32_t i = 0; i < hist; ++i) {
    if (!need(12)) return false;
    const std::uint32_t cls = read_u32(p);
    p += 4;
    s->class_histogram[cls] = read_u64(p);
    p += 8;
  }
  if (!need(8)) return false;
  const std::uint32_t top = read_u32(p);
  p += 8;  // count + reserved
  if (top > 4096) return false;
  for (std::uint32_t i = 0; i < top; ++i) {
    if (!need(12)) return false;
    const std::uint32_t size = read_u32(p);
    p += 4;
    s->top_sizes[size] = read_u64(p);
    p += 8;
  }
  return p == end;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(std::FILE* f, std::string path, std::string tmp_path,
                         Options opts)
    : f_(f),
      path_(std::move(path)),
      tmp_path_(std::move(tmp_path)),
      opts_(opts) {
  buf_.reserve(opts_.block_events);
}

std::unique_ptr<TraceWriter> TraceWriter::create(const std::string& path,
                                                 const Options& opts,
                                                 std::string* why) {
  Options o = opts;
  if (o.block_events == 0) o.block_events = kDefaultBlockEvents;
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    set_why(why, "cannot open " + tmp + " for writing");
    return nullptr;
  }
  // Header placeholder; finish() back-patches the real one.
  const std::uint8_t zeros[kTraceHeaderBytes] = {};
  if (std::fwrite(zeros, 1, sizeof(zeros), f) != sizeof(zeros)) {
    std::fclose(f);
    std::remove(tmp.c_str());
    set_why(why, "write failed on " + tmp);
    return nullptr;
  }
  return std::unique_ptr<TraceWriter>(
      new TraceWriter(f, path, std::move(tmp), o));
}

std::unique_ptr<TraceWriter> TraceWriter::create(const std::string& path,
                                                 std::string* why) {
  return create(path, Options{}, why);
}

TraceWriter::~TraceWriter() {
  if (!finished_) (void)finish(nullptr);
}

void TraceWriter::add(AllocEvent e) {
  if (e.op == AllocEvent::Op::kFree) e.size = 0;
  acc_.add(e);
  buf_.push_back(e);
  if (buf_.size() >= opts_.block_events) (void)flush_block();
}

bool TraceWriter::flush_block() {
  if (buf_.empty() || failed_) return !failed_;
  encode_block(buf_.data(), buf_.size(), &payload_);
  std::vector<std::uint8_t> block;
  block.reserve(payload_.size() + 16);
  put_u32(&block, static_cast<std::uint32_t>(payload_.size()));
  put_u32(&block, static_cast<std::uint32_t>(buf_.size()));
  block.insert(block.end(), payload_.begin(), payload_.end());
  put_u64(&block, snapshot_checksum(block.data(), block.size()));
  IndexEntry entry;
  entry.offset = next_offset_;
  entry.first_event = acc_.events() - buf_.size();
  entry.events = static_cast<std::uint32_t>(buf_.size());
  if (std::fwrite(block.data(), 1, block.size(), f_) != block.size()) {
    failed_ = true;
    return false;
  }
  index_.push_back(entry);
  next_offset_ += block.size();
  buf_.clear();
  return true;
}

bool TraceWriter::abort_write() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
  finished_ = true;
  failed_ = true;
  return false;
}

bool TraceWriter::finish(std::string* why) {
  if (finished_) return !failed_;
  if (!flush_block()) {
    set_why(why, "write failed on " + tmp_path_);
    return abort_write();
  }
  const std::uint64_t stats_offset = next_offset_;
  // Stats blob.
  const std::vector<std::uint8_t> stats_payload = encode_stats(acc_.stats());
  std::vector<std::uint8_t> blob;
  put_u32(&blob, static_cast<std::uint32_t>(stats_payload.size()));
  put_u32(&blob, 0);
  blob.insert(blob.end(), stats_payload.begin(), stats_payload.end());
  put_u64(&blob, snapshot_checksum(stats_payload.data(),
                                   stats_payload.size()));
  const std::uint64_t index_offset = stats_offset + blob.size();
  // Block index.
  std::vector<std::uint8_t> index;
  put_u32(&index, static_cast<std::uint32_t>(index_.size()));
  put_u32(&index, 0);
  for (const IndexEntry& e : index_) {
    put_u64(&index, e.offset);
    put_u64(&index, e.first_event);
    put_u32(&index, e.events);
    put_u32(&index, 0);
  }
  put_u64(&index, snapshot_checksum(index.data(), index.size()));
  const std::uint64_t file_bytes = index_offset + index.size();
  // Header.
  const core::TraceIdBounds bounds = acc_.id_bounds();
  std::vector<std::uint8_t> header;
  header.reserve(kTraceHeaderBytes);
  put_u32(&header, kTraceMagic);
  put_u32(&header, kTraceVersion);
  put_u64(&header, acc_.events());
  put_u64(&header, acc_.fingerprint());
  put_u32(&header, opts_.block_events);
  put_u32(&header, static_cast<std::uint32_t>(index_.size()));
  put_u64(&header, index_offset);
  put_u64(&header, stats_offset);
  put_u64(&header, file_bytes);
  put_u32(&header, bounds.max_id);
  put_u32(&header, 0);
  put_u64(&header, bounds.allocs);
  put_u64(&header, 0);
  put_u64(&header, snapshot_checksum(header.data(), header.size()));
  const bool ok =
      std::fwrite(blob.data(), 1, blob.size(), f_) == blob.size() &&
      std::fwrite(index.data(), 1, index.size(), f_) == index.size() &&
      std::fseek(f_, 0, SEEK_SET) == 0 &&
      std::fwrite(header.data(), 1, header.size(), f_) == header.size() &&
      std::fflush(f_) == 0;
  if (!ok) {
    set_why(why, "write failed on " + tmp_path_);
    return abort_write();
  }
  std::fclose(f_);
  f_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    set_why(why, "rename to " + path_ + " failed");
    std::remove(tmp_path_.c_str());
    finished_ = true;
    failed_ = true;
    return false;
  }
  finished_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// MappedTrace
// ---------------------------------------------------------------------------

MappedTrace::~MappedTrace() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), map_len_);
  }
}

std::unique_ptr<MappedTrace> MappedTrace::open(const std::string& path,
                                               std::string* why) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_why(why, path + ": cannot open");
    return nullptr;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    set_why(why, path + ": cannot stat");
    return nullptr;
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len < kTraceHeaderBytes) {
    ::close(fd);
    set_why(why, path + ": truncated header");
    return nullptr;
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    set_why(why, path + ": mmap failed");
    return nullptr;
  }
  auto t = std::unique_ptr<MappedTrace>(new MappedTrace());
  t->base_ = static_cast<const std::uint8_t*>(map);
  t->map_len_ = len;
  const std::uint8_t* const h = t->base_;
  const auto reject = [&](const std::string& msg) {
    set_why(why, path + ": " + msg);
    return std::unique_ptr<MappedTrace>();  // t unmaps via its destructor
  };
  if (read_u32(h) != kTraceMagic) return reject("bad magic");
  const std::uint32_t version = read_u32(h + 4);
  if (version == 0 || version > kTraceVersion) {
    return reject("unsupported version " + std::to_string(version));
  }
  if (read_u64(h + 80) != snapshot_checksum(h, 80)) {
    return reject("header checksum mismatch");
  }
  t->event_count_ = read_u64(h + 8);
  t->fingerprint_ = read_u64(h + 16);
  t->block_events_ = read_u32(h + 24);
  const std::uint32_t block_count = read_u32(h + 28);
  const std::uint64_t index_offset = read_u64(h + 32);
  const std::uint64_t stats_offset = read_u64(h + 40);
  t->file_bytes_ = read_u64(h + 48);
  t->bounds_.max_id = read_u32(h + 56);
  t->bounds_.allocs = read_u64(h + 64);
  if (t->file_bytes_ != len) return reject("declared size != file size");
  if (t->block_events_ == 0) return reject("zero block_events");
  if (stats_offset < kTraceHeaderBytes || stats_offset > len ||
      index_offset < stats_offset || index_offset > len) {
    return reject("section offsets out of bounds");
  }
  // Stats blob.
  if (index_offset - stats_offset < 16) return reject("stats blob truncated");
  const std::uint8_t* const sb = t->base_ + stats_offset;
  const std::uint32_t stats_bytes = read_u32(sb);
  if (16 + static_cast<std::uint64_t>(stats_bytes) !=
      index_offset - stats_offset) {
    return reject("stats blob size mismatch");
  }
  if (read_u64(sb + 8 + stats_bytes) !=
      snapshot_checksum(sb + 8, stats_bytes)) {
    return reject("stats blob checksum mismatch");
  }
  if (!decode_stats(sb + 8, stats_bytes, &t->stats_)) {
    return reject("stats blob malformed");
  }
  // Block index.
  const std::uint64_t index_bytes = len - index_offset;
  if (index_bytes < 16) return reject("block index truncated");
  const std::uint8_t* const ib = t->base_ + index_offset;
  if (read_u32(ib) != block_count) return reject("block index count mismatch");
  if (16 + static_cast<std::uint64_t>(block_count) * 24 != index_bytes) {
    return reject("block index size mismatch");
  }
  if (read_u64(ib + index_bytes - 8) !=
      snapshot_checksum(ib, index_bytes - 8)) {
    return reject("block index checksum mismatch");
  }
  // Walk the index: entries must tile [header, stats_offset) exactly, in
  // order, and every block's prefix and checksum must agree with them.
  t->blocks_.reserve(block_count);
  std::uint64_t next_offset = kTraceHeaderBytes;
  std::uint64_t next_event = 0;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const std::uint8_t* const e = ib + 8 + 24 * static_cast<std::size_t>(b);
    BlockRef ref;
    ref.offset = read_u64(e);
    ref.first_event = read_u64(e + 8);
    ref.events = read_u32(e + 16);
    if (ref.offset != next_offset || ref.first_event != next_event) {
      return reject("block index entries non-contiguous");
    }
    if (ref.events == 0 || ref.events > t->block_events_) {
      return reject("block event count out of range");
    }
    if (ref.offset + 16 > stats_offset) return reject("block out of bounds");
    const std::uint8_t* const blk = t->base_ + ref.offset;
    const std::uint64_t payload_bytes = read_u32(blk);
    if (ref.offset + 8 + payload_bytes + 8 > stats_offset) {
      return reject("block payload out of bounds");
    }
    if (read_u32(blk + 4) != ref.events) {
      return reject("block prefix disagrees with index");
    }
    if (read_u64(blk + 8 + payload_bytes) !=
        snapshot_checksum(blk, 8 + payload_bytes)) {
      return reject("block checksum mismatch");
    }
    next_offset = ref.offset + 8 + payload_bytes + 8;
    next_event = ref.first_event + ref.events;
    t->blocks_.push_back(ref);
  }
  if (next_offset != stats_offset) return reject("block region has a gap");
  if (next_event != t->event_count_) return reject("event count mismatch");
  return t;
}

void MappedTrace::decode_block_at(std::size_t b, AllocEvent* out) const {
  const BlockRef& ref = blocks_[b];
  const std::uint8_t* const blk = base_ + ref.offset;
  const std::uint32_t payload_bytes = read_u32(blk);
  if (!decode_block(blk + 8, payload_bytes, ref.events, out)) {
    throw std::runtime_error("dmmt: block " + std::to_string(b) +
                             " failed to decode");
  }
}

/// Streams a MappedTrace block by block through one fixed decode buffer.
/// Namespace-scope (not anonymous) so MappedTrace's friend declaration
/// grants it access to the block index.
class MappedCursor final : public core::TraceCursor {
 public:
  explicit MappedCursor(const MappedTrace* t)
      : t_(t), buf_(t->block_events()) {}

  void seek(std::uint64_t event_index) override;
  std::size_t next(const AllocEvent** run) override;

 private:
  const MappedTrace* t_;
  std::vector<AllocEvent> buf_;
  std::size_t block_ = 0;   ///< next block to decode
  std::uint64_t skip_ = 0;  ///< events to skip inside that block
};

void MappedCursor::seek(std::uint64_t event_index) {
  if (event_index >= t_->event_count()) {
    block_ = t_->block_count();
    skip_ = 0;
    return;
  }
  // Binary search the index for the block covering event_index.
  std::size_t lo = 0;
  std::size_t hi = t_->block_count();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (t_->blocks_[mid].first_event <= event_index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  block_ = lo;
  skip_ = event_index - t_->blocks_[lo].first_event;
}

std::size_t MappedCursor::next(const AllocEvent** run) {
  while (block_ < t_->block_count()) {
    const std::uint32_t events = t_->blocks_[block_].events;
    t_->decode_block_at(block_, buf_.data());
    ++block_;
    if (skip_ >= events) {  // unreachable after a valid seek; stay safe
      skip_ -= events;
      continue;
    }
    *run = buf_.data() + static_cast<std::size_t>(skip_);
    const std::size_t n = events - static_cast<std::size_t>(skip_);
    skip_ = 0;
    return n;
  }
  return 0;
}

std::unique_ptr<core::TraceCursor> MappedTrace::cursor() const {
  return std::make_unique<MappedCursor>(this);
}

bool MappedTrace::verify_blocks(std::string* why) const {
  std::vector<AllocEvent> scratch(block_events_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const BlockRef& ref = blocks_[b];
    const std::uint8_t* const blk = base_ + ref.offset;
    const std::uint32_t payload_bytes = read_u32(blk);
    if (read_u64(blk + 8 + payload_bytes) !=
        snapshot_checksum(blk, 8 + payload_bytes)) {
      return set_why(why, "block " + std::to_string(b) +
                              ": checksum mismatch");
    }
    if (!decode_block(blk + 8, payload_bytes, ref.events, scratch.data())) {
      return set_why(why, "block " + std::to_string(b) +
                              ": payload failed to decode");
    }
  }
  return true;
}

core::AllocTrace MappedTrace::materialize() const {
  core::AllocTrace out;
  std::vector<AllocEvent>& events = out.events();
  events.reserve(static_cast<std::size_t>(event_count_));
  std::vector<AllocEvent> scratch(block_events_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    decode_block_at(b, scratch.data());
    events.insert(events.end(), scratch.begin(),
                  scratch.begin() + blocks_[b].events);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool write_trace_file(const core::AllocTrace& trace, const std::string& path,
                      const TraceWriter::Options& opts, std::string* why) {
  std::unique_ptr<TraceWriter> w = TraceWriter::create(path, opts, why);
  if (w == nullptr) return false;
  for (const AllocEvent& e : trace.events()) w->add(e);
  return w->finish(why);
}

bool is_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint8_t magic[4] = {};
  const bool ok = std::fread(magic, 1, 4, f) == 4;
  std::fclose(f);
  return ok && read_u32(magic) == kTraceMagic;
}

}  // namespace dmm::trace
