#include "dmm/trace/trace_sample.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "dmm/alloc/size_class.h"

namespace dmm::trace {

using core::AllocEvent;

namespace {

/// splitmix64: deterministic, well-mixed, and seedable — the sample must
/// be a pure function of (source, budget, seed), so no library RNG whose
/// stream could differ across platforms is involved.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from the (seed, alloc-event-index) hash.  Keying on
/// the event index (unique per object even when ids are reused) keeps
/// every object's draw independent.
double inclusion_draw(std::uint64_t seed, std::uint64_t key) {
  const std::uint64_t h = splitmix64(seed ^ splitmix64(key));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint32_t stratum_key(unsigned size_class, std::uint16_t phase) {
  return (static_cast<std::uint32_t>(size_class) << 16) | phase;
}

struct Stratum {
  std::uint64_t objects = 0;
  std::uint64_t sampled = 0;
  double bytes = 0.0;
  double rate = 1.0;
};

struct KeptObj {
  std::uint32_t new_id = 0;
  std::uint32_t size = 0;
  double rate = 1.0;
};

}  // namespace

SampleResult sample_trace(const core::TraceSource& source,
                          const SampleOptions& opts) {
  SampleResult res;
  res.population_events = source.event_count();

  // Pass 1: population object counts per (size class, phase) stratum.
  // Ordered map: strata are iterated when assigning rates and reporting,
  // and the iteration order must be deterministic.
  std::map<std::uint32_t, Stratum> strata;
  std::uint64_t population_objects = 0;
  double total_bytes = 0.0;
  {
    const auto cur = source.cursor();
    const AllocEvent* run = nullptr;
    std::size_t n = 0;
    while ((n = cur->next(&run)) != 0) {
      for (std::size_t k = 0; k < n; ++k) {
        const AllocEvent& e = run[k];
        if (e.op != AllocEvent::Op::kAlloc) continue;
        const unsigned cls =
            alloc::SizeClass::index_for(e.size == 0 ? 1 : e.size);
        Stratum& s = strata[stratum_key(cls, e.phase)];
        ++s.objects;
        s.bytes += static_cast<double>(e.size == 0 ? 1 : e.size);
        ++population_objects;
        total_bytes += static_cast<double>(e.size == 0 ? 1 : e.size);
      }
    }
  }

  // Rate assignment (an object costs about two events of the budget):
  // half the object budget is spread uniformly, half in proportion to
  // each stratum's byte mass.  Rare large-block strata dominate the peak
  // estimate's variance, so the byte half samples them densely — usually
  // exhaustively — while the abundant small strata carry the
  // subsampling.  A per-stratum floor keeps even byte-light strata
  // represented.
  const double target_objects = static_cast<double>(opts.budget) / 2.0;
  for (auto& [key, s] : strata) {
    (void)key;
    double rate = 1.0;
    if (opts.budget != 0 && s.objects > 0) {
      const double uniform = target_objects / 2.0 /
                             static_cast<double>(population_objects);
      const double by_bytes =
          total_bytes > 0.0
              ? target_objects / 2.0 * (s.bytes / total_bytes) /
                    static_cast<double>(s.objects)
              : 0.0;
      const double floor_rate = static_cast<double>(opts.min_per_stratum) /
                                static_cast<double>(s.objects);
      rate = std::max(std::max(uniform, by_bytes), floor_rate);
    }
    s.rate = std::min(1.0, rate);
  }

  // Pass 2: hash-based inclusion, Horvitz-Thompson peak tracking, and
  // emission with dense renumbering.
  std::unordered_map<std::uint32_t, KeptObj> kept;  // original id -> obj
  std::uint32_t next_id = 0;
  double ht_live = 0.0;      // sum of size / rate over kept live objects
  double ht_var = 0.0;       // sum of size^2 (1 - rate) / rate^2 over same
  double peak_live = 0.0;
  double var_at_peak = 0.0;
  {
    const auto cur = source.cursor();
    const AllocEvent* run = nullptr;
    std::size_t n = 0;
    std::uint64_t event_index = 0;
    while ((n = cur->next(&run)) != 0) {
      for (std::size_t k = 0; k < n; ++k, ++event_index) {
        const AllocEvent& e = run[k];
        if (e.op == AllocEvent::Op::kAlloc) {
          const unsigned cls =
              alloc::SizeClass::index_for(e.size == 0 ? 1 : e.size);
          Stratum& s = strata[stratum_key(cls, e.phase)];
          if (inclusion_draw(opts.seed, event_index) >= s.rate) continue;
          ++s.sampled;
          ++res.sampled_objects;
          const KeptObj obj{next_id++, e.size, s.rate};
          kept[e.id] = obj;
          res.trace.record_alloc(obj.new_id, e.size, e.phase);
          const double sz = static_cast<double>(e.size);
          ht_live += sz / obj.rate;
          ht_var += sz * sz * (1.0 - obj.rate) / (obj.rate * obj.rate);
          if (ht_live > peak_live) {
            peak_live = ht_live;
            var_at_peak = ht_var;
          }
        } else {
          const auto it = kept.find(e.id);
          if (it == kept.end()) continue;
          const KeptObj obj = it->second;
          kept.erase(it);
          res.trace.record_free(obj.new_id, e.phase);
          const double sz = static_cast<double>(obj.size);
          ht_live -= sz / obj.rate;
          ht_var -= sz * sz * (1.0 - obj.rate) / (obj.rate * obj.rate);
        }
      }
    }
  }

  res.estimated_peak_bytes = peak_live;
  res.peak_stderr_bytes = std::sqrt(std::max(0.0, var_at_peak));
  res.peak_relative_error_bound =
      peak_live > 0.0 ? 2.0 * res.peak_stderr_bytes / peak_live : 0.0;
  res.strata.reserve(strata.size());
  for (const auto& [key, s] : strata) {
    StratumReport r;
    r.size_class = key >> 16;
    r.phase = static_cast<std::uint16_t>(key & 0xffffu);
    r.objects = s.objects;
    r.sampled = s.sampled;
    r.rate = s.rate;
    res.strata.push_back(r);
  }
  return res;
}

SampleResult sample_trace(const core::TraceSource& source,
                          std::uint64_t budget, std::uint64_t seed) {
  SampleOptions opts;
  opts.budget = budget;
  opts.seed = seed;
  return sample_trace(source, opts);
}

}  // namespace dmm::trace
